//! `Gunrock/Color_IS` — Algorithm 5: independent-set coloring with the
//! min-max optimization.
//!
//! Every iteration, a compute operator assigns each active thread one
//! uncolored vertex, which serially scans its neighbor list comparing
//! pre-assigned random numbers. A vertex that holds the largest number
//! among its relevant neighbors joins the max independent set (color
//! `2·iteration + 1`); with the min-max optimization the smallest joins
//! the min set (color `2·iteration + 2`) — two colors per iteration for
//! free, the paper's headline optimization ("reduces the coloring time
//! almost by half").
//!
//! The neighbor filter follows Algorithm 5 lines 26–28 exactly: neighbors
//! colored in *earlier* iterations are skipped; neighbors holding this
//! iteration's two colors are still compared, which is what makes the
//! kernel correct without atomics — whether a racing write to `C[u]` is
//! observed or not, the comparison outcome is the same because the
//! random numbers are tie-free.

use gc_graph::Csr;
use gc_gunrock::{ops, DeviceCsr, Enactor, Frontier};
use gc_vgpu::rng::vertex_weight;
use gc_vgpu::{Device, DeviceBuffer};

use crate::color::ColoringResult;

/// How per-vertex priorities are generated.
///
/// `Random` is the paper's choice. `LargestDegreeFirst` is its §VI
/// future-work hypothesis: *"with power law graphs, it is possible that
/// a random weight initialization would perform worse than largest-
/// degree first, because random weight initialization will make it more
/// likely a node with few neighbors is colored rather than a node with
/// many neighbors"* — the ablation harness tests exactly this.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WeightMode {
    /// Luby's Monte-Carlo random priorities.
    #[default]
    Random,
    /// Degree in the high bits, hash tie-break below, id at the bottom
    /// (still tie-free).
    LargestDegreeFirst,
}

/// Variant knobs for Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IsConfig {
    /// Color both a max and a min set per iteration.
    pub min_max: bool,
    /// Claim colors with `atomicCAS` instead of plain stores.
    pub use_atomics: bool,
    /// Priority generation scheme.
    pub weight_mode: WeightMode,
    /// Replace the serial per-thread neighbor loop with the
    /// warp-cooperative neighbor reduction — the load-balancing remedy
    /// for the paper's high-degree (af_shell3) pathology, at the price
    /// of extra kernels per iteration.
    pub load_balance: bool,
    /// Maintain a compacted active-vertex frontier: per-iteration
    /// kernels launch over `|frontier|` threads instead of `n`, and the
    /// contraction's output length doubles as the convergence test
    /// (replacing the full-width uncolored count). Colorings are
    /// identical either way — the kernels early-return on colored
    /// vertices, so restricting the launch to the uncolored set removes
    /// only no-op threads.
    pub compact_frontier: bool,
    /// Quality tier (Chen et al.): *short-cutting*. Winners first-fit
    /// into the lowest color legal for their whole neighborhood instead
    /// of taking this round's fixed color index. The winner sets are
    /// identical to the round-indexed variant's (selection is split
    /// into its own flag-writing kernel, so every color read is
    /// stable), which bounds the result at the round-indexed color
    /// count — usually well under it, because first-fit refills the low
    /// classes every round. Costs one extra kernel per iteration.
    pub short_cutting: bool,
    /// Safety cap on iterations.
    pub max_iterations: u32,
}

impl Default for IsConfig {
    fn default() -> Self {
        // The paper's best Gunrock variant: min-max, no atomics.
        IsConfig {
            min_max: true,
            use_atomics: false,
            weight_mode: WeightMode::Random,
            load_balance: false,
            compact_frontier: true,
            short_cutting: false,
            max_iterations: 100_000,
        }
    }
}

impl IsConfig {
    /// Table II row "Independent Set with Atomics".
    pub fn single_set_atomics() -> Self {
        IsConfig {
            min_max: false,
            use_atomics: true,
            ..Default::default()
        }
    }

    /// Table II row "Independent Set without Atomics".
    pub fn single_set_no_atomics() -> Self {
        IsConfig {
            min_max: false,
            use_atomics: false,
            ..Default::default()
        }
    }

    /// Table II row "Min-Max Independent Set".
    pub fn min_max() -> Self {
        Self::default()
    }

    /// The §VI future-work variant: largest-degree-first priorities.
    pub fn largest_degree_first() -> Self {
        IsConfig {
            weight_mode: WeightMode::LargestDegreeFirst,
            ..Default::default()
        }
    }

    /// Quality tier: min-max IS with short-cutting (first-fit commits).
    /// Registered as `Gunrock/Color_IS_SC`.
    pub fn short_cut() -> Self {
        IsConfig {
            short_cutting: true,
            ..Default::default()
        }
    }

    /// Warp-cooperative (load-balanced) min-max IS.
    pub fn min_max_load_balanced() -> Self {
        IsConfig {
            load_balance: true,
            ..Default::default()
        }
    }

    /// The pre-compaction launch shape: every per-iteration kernel runs
    /// over all `n` vertices and convergence is a full-width uncolored
    /// count. Kept as the benchmark baseline and the equivalence oracle
    /// for the frontier-compacted default.
    pub fn full_width() -> Self {
        IsConfig {
            compact_frontier: false,
            ..Default::default()
        }
    }
}

/// Runs Algorithm 5 on a fresh K40c-model device.
///
/// ```
/// use gc_core::gunrock_is::{gunrock_is, IsConfig};
/// use gc_core::verify::assert_proper;
/// use gc_graph::generators::grid2d;
/// use gc_graph::generators::Stencil2d;
///
/// let g = grid2d(16, 16, Stencil2d::FivePoint);
/// let r = gunrock_is(&g, 42, IsConfig::min_max());
/// assert_proper(&g, r.coloring.as_slice());
/// assert!(r.num_colors >= 2);
/// assert!(r.model_ms > 0.0);
/// ```
pub fn gunrock_is(g: &Csr, seed: u64, cfg: IsConfig) -> ColoringResult {
    let dev = Device::k40c();
    run_on(&dev, g, seed, cfg)
}

/// Runs Algorithm 5 on the provided device (model time = device clock
/// delta; graph upload and result download are outside the timed span,
/// as in the paper's methodology).
///
/// On the compacted-frontier default, the per-iteration pipeline (color
/// kernel(s) plus the fused contraction) is captured once as a
/// [`gc_vgpu::LaunchGraph`] and replayed per bulk-synchronous iteration:
/// the kernels bill their full work, the fixed launch overhead is paid
/// once per iteration, and the frontier length is resolved at replay
/// time, so colorings stay bit-identical to the uncaptured form. The
/// full-width baseline keeps the paper's one-launch-per-op shape.
pub fn run_on(dev: &Device, g: &Csr, seed: u64, cfg: IsConfig) -> ColoringResult {
    use std::cell::{Cell, RefCell};

    let _pool = gc_vgpu::pool::lease();
    let n = g.num_vertices();
    let csr = DeviceCsr::upload(dev, g);
    let colors = DeviceBuffer::<u32>::zeroed(n);
    let rand = DeviceBuffer::<u64>::zeroed(n);
    // Winner flags of the short-cutting path (1 = max set, 2 = min set).
    let winner = DeviceBuffer::<u32>::zeroed(n);
    dev.reset();
    let launches_before = dev.profile().launches;

    // Initialize R <- generateRandomNumbers (or degree-based priority).
    match cfg.weight_mode {
        WeightMode::Random => dev.launch("is::init_random", n, |t| {
            let v = t.tid();
            t.charge(12); // hash computation
            t.write(&rand, v, vertex_weight(seed, v as u32));
        }),
        WeightMode::LargestDegreeFirst => dev.launch("is::init_degree", n, |t| {
            let v = t.tid();
            let d = (csr.degree(t, v as u32) as u64).min(0xffff);
            t.charge(12);
            let hash_bits = (vertex_weight(seed, v as u32) >> 48) & 0xffff;
            t.write(&rand, v, (d << 48) | (hash_bits << 32) | v as u64);
        }),
    }

    let frontier = RefCell::new(Frontier::all(n));
    let remaining = DeviceBuffer::<u32>::zeroed(1);

    // The iteration's color kernels, shared by the captured-replay and
    // full-width paths.
    let issue_color = |iteration: u32, frontier: &Frontier| {
        let base = if cfg.min_max {
            2 * iteration
        } else {
            iteration
        };
        let color_max = base + 1;
        let color_min = base + 2;

        if cfg.short_cutting {
            // Short-cutting: the same winner election as the serial
            // path below, split into a flag-writing select kernel (no
            // color writes, so every color read is stable) and per-set
            // first-fit commit kernels. Each winner set is independent
            // (tie-free priorities), so one commit kernel's threads
            // never write each other's neighborhoods; minima commit
            // after maxima so an adjacent max-winner's fresh color is
            // forbidden to them.
            ops::compute(dev, "is::sc_select", frontier, |t, v| {
                if t.read(&colors, v as usize) != 0 {
                    t.write(&winner, v as usize, 0);
                    return;
                }
                let rv = t.read(&rand, v as usize);
                let mut is_max = true;
                let mut is_min = cfg.min_max;
                let (s, e) = csr.neighbor_range(t, v);
                for slot in s..e {
                    let u = csr.neighbor(t, slot);
                    if t.read(&colors, u as usize) != 0 {
                        continue; // out of the competition for good
                    }
                    let ru = t.read(&rand, u as usize);
                    if rv <= ru {
                        is_max = false;
                    }
                    if rv >= ru {
                        is_min = false;
                    }
                    t.charge(2);
                    if !is_max && !is_min {
                        break;
                    }
                }
                let flag = if is_max {
                    1
                } else if is_min {
                    2
                } else {
                    0
                };
                t.write(&winner, v as usize, flag);
            });
            let commit = |name: &str, flag: u32| {
                ops::compute(dev, name, frontier, |t, v| {
                    if t.read(&winner, v as usize) != flag || t.read(&colors, v as usize) != 0 {
                        return;
                    }
                    let (s, e) = csr.neighbor_range(t, v);
                    let mut forbidden: Vec<u32> = Vec::with_capacity(e - s);
                    for u in csr.neighbors_seq(t, v) {
                        let cu = t.read(&colors, u as usize);
                        if cu != 0 {
                            forbidden.push(cu);
                        }
                    }
                    t.write(&colors, v as usize, crate::reduce::mex(&mut forbidden));
                });
            };
            commit("is::sc_commit_max", 1);
            if cfg.min_max {
                commit("is::sc_commit_min", 2);
            }
        } else if cfg.load_balance {
            // Warp-cooperative path: reduce (max, min) of uncolored
            // neighbors' priorities in one balanced pass, then color in
            // a follow-up kernel. More launches, shorter critical path.
            // Like the paper's AR note ("one for max reduction, one for
            // min reduction"), the two set criteria need separate
            // reduction passes.
            let nmax = ops::neighbor_reduce_warp(
                dev,
                "is::lb_max",
                &csr,
                frontier,
                0u64,
                |t, _src, dst| {
                    if t.read(&colors, dst as usize) == 0 {
                        t.read(&rand, dst as usize)
                    } else {
                        0
                    }
                },
                u64::max,
            );
            let nmin = if cfg.min_max {
                Some(ops::neighbor_reduce_warp(
                    dev,
                    "is::lb_min",
                    &csr,
                    frontier,
                    u64::MAX,
                    |t, _src, dst| {
                        if t.read(&colors, dst as usize) == 0 {
                            t.read(&rand, dst as usize)
                        } else {
                            u64::MAX
                        }
                    },
                    u64::min,
                ))
            } else {
                None
            };
            // The reductions are frontier-aligned, so the color kernel
            // indexes them by frontier position (== vertex id only when
            // the frontier is the dense identity).
            ops::compute(dev, "is::lb_color_op", frontier, |t, v| {
                if t.read(&colors, v as usize) != 0 {
                    return;
                }
                let i = t.tid();
                let rv = t.read(&rand, v as usize);
                if rv > t.read(&nmax, i) {
                    t.write(&colors, v as usize, color_max);
                }
                if let Some(nmin) = &nmin {
                    if rv < t.read(nmin, i) {
                        t.write(&colors, v as usize, color_min);
                    }
                }
            });
        } else {
            ops::compute(dev, "is::color_op", frontier, |t, v| {
                if t.read(&colors, v as usize) != 0 {
                    return;
                }
                let rv = t.read(&rand, v as usize);
                let mut is_max = true;
                let mut is_min = cfg.min_max;
                let (s, e) = csr.neighbor_range(t, v);
                for slot in s..e {
                    let u = csr.neighbor(t, slot);
                    let cu = t.read(&colors, u as usize);
                    if cu != 0 && cu != color_max && cu != color_min {
                        continue; // colored in a previous iteration
                    }
                    let ru = t.read(&rand, u as usize);
                    if rv <= ru {
                        is_max = false;
                    }
                    if rv >= ru {
                        is_min = false;
                    }
                    t.charge(2);
                    if !is_max && !is_min {
                        break;
                    }
                }
                // Two independent ifs, as in Algorithm 5 lines 37-42 (a
                // vertex that is both — no comparable neighbor — ends at
                // the min color).
                if is_max {
                    if cfg.use_atomics {
                        t.atomic_cas(&colors, v as usize, 0, color_max);
                    } else {
                        t.write(&colors, v as usize, color_max);
                    }
                }
                if is_min {
                    if cfg.use_atomics {
                        t.atomic_exchange(&colors, v as usize, color_min);
                    } else {
                        t.write(&colors, v as usize, color_min);
                    }
                }
            });
        }
    };

    // Compacted path: capture color kernels + fused contraction once,
    // replay per iteration. The iteration number and the frontier swap
    // resolve inside the captured body at replay time.
    let round = Cell::new(0u32);
    let left_cell = Cell::new(0u32);
    let pipeline = cfg.compact_frontier.then(|| {
        dev.capture("is::iteration", || {
            let cur = frontier.borrow();
            issue_color(round.get(), &cur);
            // Contract the frontier to the still-uncolored vertices —
            // the output length is the convergence test and next
            // iteration's kernels launch over it.
            let next = ops::filter(dev, "is::check_op", &cur, |t, v| {
                t.read(&colors, v as usize) == 0
            });
            left_cell.set(next.len() as u32);
            drop(cur);
            *frontier.borrow_mut() = next;
        })
    });

    let mut enactor = Enactor::new(dev).with_max_iterations(cfg.max_iterations);
    let iterations = enactor.run(|iteration| {
        // One span per bulk-synchronous iteration: kernel events emitted
        // by the device below nest inside it on the tracing thread.
        let mut iter_span = gc_telemetry::span("iteration");
        let iter_model0 = if iter_span.is_recording() {
            dev.elapsed_ms()
        } else {
            0.0
        };
        iter_span.attr("iteration", iteration);
        let base = if cfg.min_max {
            2 * iteration
        } else {
            iteration
        };

        let left = if let Some(pipeline) = &pipeline {
            round.set(iteration);
            dev.replay(pipeline);
            left_cell.get()
        } else {
            // Legacy full-width path: every op one launch, uncolored
            // count over all n.
            issue_color(iteration, &frontier.borrow());
            remaining.set(0, 0);
            dev.launch("is::check_op", n, |t| {
                let v = t.tid();
                if t.read(&colors, v) == 0 {
                    t.atomic_add(&remaining, 0, 1);
                }
            });
            dev.download(&remaining)[0]
        };
        if iter_span.is_recording() {
            iter_span.attr("frontier_uncolored", left);
            iter_span.attr(
                "colors_so_far",
                if cfg.min_max { base + 2 } else { base + 1 },
            );
            iter_span.set_model_range(iter_model0, dev.elapsed_ms());
        }
        left > 0
    });

    let model_ms = dev.elapsed_ms();
    let launches = dev.profile().launches - launches_before;
    ColoringResult::new(colors.to_vec(), iterations, model_ms, launches).with_profile(dev.profile())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_proper;
    use gc_graph::generators::{complete, cycle, erdos_renyi, grid2d, path, star, Stencil2d};

    fn check_all_variants(g: &Csr) {
        for cfg in [
            IsConfig::min_max(),
            IsConfig::single_set_atomics(),
            IsConfig::single_set_no_atomics(),
        ] {
            let r = gunrock_is(g, 7, cfg);
            assert_proper(g, r.coloring.as_slice());
        }
    }

    #[test]
    fn colors_fixed_topologies() {
        check_all_variants(&path(17));
        check_all_variants(&cycle(9));
        check_all_variants(&star(12));
        check_all_variants(&complete(7));
    }

    #[test]
    fn colors_random_graph() {
        let g = erdos_renyi(400, 0.02, 3);
        check_all_variants(&g);
    }

    #[test]
    fn colors_mesh() {
        let g = grid2d(20, 20, Stencil2d::FivePoint);
        let r = gunrock_is(&g, 1, IsConfig::min_max());
        assert_proper(&g, r.coloring.as_slice());
        // A 5-point mesh is sparse; IS coloring should stay modest.
        assert!(r.num_colors <= 12, "used {} colors", r.num_colors);
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let g = complete(6);
        let r = gunrock_is(&g, 5, IsConfig::min_max());
        assert_eq!(r.num_colors, 6);
    }

    #[test]
    fn empty_and_isolated() {
        let g = Csr::empty(5);
        let r = gunrock_is(&g, 0, IsConfig::min_max());
        assert_proper(&g, r.coloring.as_slice());
        // Isolated vertices are both local max and local min; per
        // Algorithm 5 the min assignment lands last, so all share one color.
        assert_eq!(r.num_colors, 1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = erdos_renyi(200, 0.03, 11);
        let a = gunrock_is(&g, 42, IsConfig::min_max());
        let b = gunrock_is(&g, 42, IsConfig::min_max());
        assert_eq!(a.coloring, b.coloring);
        assert_eq!(a.model_ms, b.model_ms);
    }

    #[test]
    fn seeds_change_coloring() {
        let g = erdos_renyi(200, 0.03, 11);
        let a = gunrock_is(&g, 1, IsConfig::min_max());
        let b = gunrock_is(&g, 2, IsConfig::min_max());
        assert_ne!(a.coloring, b.coloring);
    }

    #[test]
    fn min_max_halves_iterations() {
        let g = erdos_renyi(500, 0.02, 9);
        let single = gunrock_is(&g, 3, IsConfig::single_set_no_atomics());
        let minmax = gunrock_is(&g, 3, IsConfig::min_max());
        assert!(
            (minmax.iterations as f64) < 0.75 * single.iterations as f64,
            "min-max {} vs single {}",
            minmax.iterations,
            single.iterations
        );
    }

    #[test]
    fn min_max_is_faster_in_model_time() {
        let g = erdos_renyi(800, 0.01, 4);
        let single = gunrock_is(&g, 3, IsConfig::single_set_no_atomics());
        let minmax = gunrock_is(&g, 3, IsConfig::min_max());
        assert!(minmax.model_ms < single.model_ms);
    }

    #[test]
    fn atomics_cost_more_than_plain_stores() {
        let g = erdos_renyi(800, 0.01, 4);
        let with = gunrock_is(&g, 3, IsConfig::single_set_atomics());
        let without = gunrock_is(&g, 3, IsConfig::single_set_no_atomics());
        // Same algorithm, same coloring, different claim mechanism.
        assert_eq!(with.coloring, without.coloring);
        assert!(with.model_ms > without.model_ms);
    }

    #[test]
    fn load_balanced_variant_is_proper_everywhere() {
        for g in [
            path(17),
            cycle(9),
            star(30),
            complete(7),
            erdos_renyi(300, 0.03, 4),
            grid2d(14, 14, Stencil2d::NinePoint),
        ] {
            let r = gunrock_is(&g, 7, IsConfig::min_max_load_balanced());
            assert_proper(&g, r.coloring.as_slice());
        }
    }

    #[test]
    fn load_balanced_variant_is_deterministic() {
        let g = erdos_renyi(200, 0.04, 1);
        let a = gunrock_is(&g, 3, IsConfig::min_max_load_balanced());
        let b = gunrock_is(&g, 3, IsConfig::min_max_load_balanced());
        assert_eq!(a.coloring, b.coloring);
        assert_eq!(a.model_ms, b.model_ms);
    }

    #[test]
    fn load_balancing_costs_more_kernels() {
        // Both variants replay one launch graph per iteration, so the
        // dispatch count no longer separates them — the kernels *inside*
        // each replayed graph do.
        let g = erdos_renyi(300, 0.02, 5);
        let lb = gunrock_is(&g, 2, IsConfig::min_max_load_balanced());
        let tm = gunrock_is(&g, 2, IsConfig::min_max());
        let lb_rate = lb.profile.as_ref().unwrap().graph_kernels as f64 / lb.iterations as f64;
        let tm_rate = tm.profile.as_ref().unwrap().graph_kernels as f64 / tm.iterations as f64;
        assert!(lb_rate > tm_rate, "{lb_rate} vs {tm_rate}");
    }

    #[test]
    fn largest_degree_first_variant_is_proper() {
        let g = gc_graph::generators::barabasi_albert(400, 3, 2);
        let r = gunrock_is(&g, 7, IsConfig::largest_degree_first());
        assert_proper(&g, r.coloring.as_slice());
    }

    #[test]
    fn ldf_colors_hubs_early_on_power_law() {
        // The paper's §VI hypothesis: degree priorities color the hubs
        // first. The highest-degree vertex must land in the very first
        // max set (color 1).
        let g = gc_graph::generators::barabasi_albert(400, 3, 2);
        let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
        let r = gunrock_is(&g, 7, IsConfig::largest_degree_first());
        assert_eq!(r.coloring.color(hub), 1);
    }

    #[test]
    fn reports_launches_and_time() {
        let g = path(50);
        let r = gunrock_is(&g, 0, IsConfig::min_max());
        // One graph replay (= one dispatch) per iteration plus init;
        // the replayed graphs carry at least two kernels per iteration
        // (color + contraction).
        assert!(r.kernel_launches > r.iterations as u64);
        let p = r.profile.as_ref().unwrap();
        assert_eq!(p.graph_replays, r.iterations as u64);
        assert!(p.graph_kernels >= 2 * r.iterations as u64);
        assert!(p.launch_overhead_saved_cycles > 0.0);
        assert!(r.model_ms > 0.0);
    }

    #[test]
    fn short_cutting_is_proper_and_never_worse_than_round_indexed() {
        for g in [
            path(17),
            cycle(9),
            star(30),
            complete(7),
            erdos_renyi(400, 0.02, 3),
            grid2d(14, 14, Stencil2d::NinePoint),
        ] {
            let sc = gunrock_is(&g, 7, IsConfig::short_cut());
            assert_proper(&g, sc.coloring.as_slice());
            let ri = gunrock_is(&g, 7, IsConfig::min_max());
            assert!(
                sc.num_colors <= ri.num_colors,
                "short-cut {} colors vs round-indexed {}",
                sc.num_colors,
                ri.num_colors
            );
            // Same winner sets, same rounds.
            assert_eq!(sc.iterations, ri.iterations);
        }
    }

    #[test]
    fn short_cutting_beats_round_indexing_on_sparse_graphs() {
        // On a sparse mesh the round-indexed variant burns ~2 colors
        // per round; first-fit refills the low classes instead.
        let g = grid2d(24, 24, Stencil2d::FivePoint);
        let sc = gunrock_is(&g, 11, IsConfig::short_cut());
        let ri = gunrock_is(&g, 11, IsConfig::min_max());
        assert!(
            sc.num_colors < ri.num_colors,
            "short-cut {} vs round-indexed {}",
            sc.num_colors,
            ri.num_colors
        );
    }

    #[test]
    fn short_cutting_is_deterministic() {
        let g = erdos_renyi(300, 0.03, 8);
        let a = gunrock_is(&g, 4, IsConfig::short_cut());
        let b = gunrock_is(&g, 4, IsConfig::short_cut());
        assert_eq!(a.coloring, b.coloring);
        assert_eq!(a.model_ms, b.model_ms);
    }

    #[test]
    fn short_cutting_compacted_matches_full_width() {
        let g = erdos_renyi(250, 0.03, 6);
        let compacted = gunrock_is(&g, 2, IsConfig::short_cut());
        let full = gunrock_is(
            &g,
            2,
            IsConfig {
                compact_frontier: false,
                ..IsConfig::short_cut()
            },
        );
        assert_eq!(compacted.coloring, full.coloring);
        assert_eq!(compacted.iterations, full.iterations);
    }

    #[test]
    fn compacted_matches_full_width() {
        for g in [
            erdos_renyi(300, 0.02, 5),
            grid2d(14, 14, Stencil2d::NinePoint),
            star(21),
            complete(6),
        ] {
            let compacted = gunrock_is(&g, 9, IsConfig::min_max());
            let full = gunrock_is(&g, 9, IsConfig::full_width());
            assert_eq!(compacted.coloring, full.coloring);
            assert_eq!(compacted.iterations, full.iterations);
            // The captured path must never dispatch more than the
            // uncaptured full-width baseline.
            assert!(compacted.kernel_launches <= full.kernel_launches);
        }
    }
}
