//! Coloring validity checking.

use gc_graph::Csr;

/// Checks that `colors` is a *proper, complete* coloring of `g`: every
/// vertex colored (non-zero) and no edge monochromatic. Returns the first
/// violation found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Vertex left uncolored.
    Uncolored(u32),
    /// Edge with equal endpoint colors.
    Conflict(u32, u32),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Uncolored(v) => write!(f, "vertex {v} is uncolored"),
            Violation::Conflict(u, v) => write!(f, "edge ({u}, {v}) is monochromatic"),
        }
    }
}

/// Validates a coloring; `Ok(())` when proper and complete.
pub fn is_proper(g: &Csr, colors: &[u32]) -> Result<(), Violation> {
    assert_eq!(
        colors.len(),
        g.num_vertices(),
        "color array length mismatch"
    );
    for (v, &c) in colors.iter().enumerate() {
        if c == 0 {
            return Err(Violation::Uncolored(v as u32));
        }
    }
    for (u, v) in g.edges() {
        if colors[u as usize] == colors[v as usize] {
            return Err(Violation::Conflict(u, v));
        }
    }
    Ok(())
}

/// Panics with a readable message on an invalid coloring (test helper).
pub fn assert_proper(g: &Csr, colors: &[u32]) {
    if let Err(v) = is_proper(g, colors) {
        panic!("invalid coloring: {v}");
    }
}

/// Counts monochromatic edges (used by the hash implementation's
/// conflict-resolution tests).
pub fn count_conflicts(g: &Csr, colors: &[u32]) -> usize {
    g.edges()
        .filter(|&(u, v)| {
            let (cu, cv) = (colors[u as usize], colors[v as usize]);
            cu != 0 && cu == cv
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gc_graph::generators::{complete, cycle, path};

    #[test]
    fn accepts_proper_coloring() {
        let g = path(4);
        assert_eq!(is_proper(&g, &[1, 2, 1, 2]), Ok(()));
    }

    #[test]
    fn rejects_uncolored() {
        let g = path(3);
        assert_eq!(is_proper(&g, &[1, 0, 1]), Err(Violation::Uncolored(1)));
    }

    #[test]
    fn rejects_conflict() {
        let g = cycle(3);
        assert_eq!(is_proper(&g, &[1, 1, 2]), Err(Violation::Conflict(0, 1)));
    }

    #[test]
    fn complete_graph_needs_distinct() {
        let g = complete(3);
        assert!(is_proper(&g, &[1, 2, 3]).is_ok());
        assert!(is_proper(&g, &[1, 2, 2]).is_err());
    }

    #[test]
    fn conflict_count() {
        let g = cycle(4);
        assert_eq!(count_conflicts(&g, &[1, 1, 1, 2]), 2);
        assert_eq!(count_conflicts(&g, &[1, 2, 1, 2]), 0);
        // Uncolored endpoints don't count as conflicts.
        assert_eq!(count_conflicts(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "invalid coloring")]
    fn assert_proper_panics() {
        assert_proper(&path(2), &[1, 1]);
    }
}
