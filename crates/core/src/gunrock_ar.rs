//! `Gunrock/Color_AR` — Algorithm 7: advance + neighbor-reduce coloring.
//!
//! Replaces the serial per-vertex neighbor loop of the IS kernel with a
//! load-balanced `advance` (one thread per *edge*) followed by a
//! segmented max-reduction over each neighbor list. Perfectly balanced —
//! and, exactly as the paper measures, much slower end-to-end: every
//! iteration costs a whole pipeline of kernels (degree, scan, gather,
//! map, segmented reduce, color, filter) plus their synchronizations,
//! and the reduce operator can only produce one comparison per pass, so
//! only one color is assigned per iteration.

use gc_graph::Csr;
use gc_gunrock::{ops, DeviceCsr, Enactor, Frontier};
use gc_vgpu::rng::vertex_weight;
use gc_vgpu::{Device, DeviceBuffer};

use crate::color::ColoringResult;

/// Safety cap on iterations.
const MAX_ITERATIONS: u32 = 100_000;

/// Runs Algorithm 7 on a fresh K40c-model device.
pub fn gunrock_ar(g: &Csr, seed: u64) -> ColoringResult {
    let dev = Device::k40c();
    run_on(&dev, g, seed)
}

/// Runs Algorithm 7 on the provided device.
pub fn run_on(dev: &Device, g: &Csr, seed: u64) -> ColoringResult {
    let n = g.num_vertices();
    let csr = DeviceCsr::upload(dev, g);
    let colors = DeviceBuffer::<u32>::zeroed(n);
    let rand = DeviceBuffer::<u64>::zeroed(n);
    dev.reset();
    let launches_before = dev.profile().launches;

    dev.launch("ar::init_random", n, |t| {
        let v = t.tid();
        t.charge(12);
        t.write(&rand, v, vertex_weight(seed, v as u32));
    });

    let mut frontier = Frontier::all(n);
    let mut enactor = Enactor::new(dev).with_max_iterations(MAX_ITERATIONS);
    let iterations = enactor.run(|iteration| {
        // One span per bulk-synchronous iteration: kernel events emitted
        // by the device below nest inside it on the tracing thread.
        let mut iter_span = gc_telemetry::span("iteration");
        let iter_model0 = if iter_span.is_recording() {
            dev.elapsed_ms()
        } else {
            0.0
        };
        iter_span.attr("iteration", iteration);
        let color = iteration + 1;

        // Neighbor-reduce: max random number among *uncolored* neighbors
        // of every frontier vertex.
        let reduced = ops::neighbor_reduce(
            dev,
            "ar::neighbor_reduce",
            &csr,
            &frontier,
            |t, _src, dst| {
                if t.read(&colors, dst as usize) == 0 {
                    t.read(&rand, dst as usize)
                } else {
                    0
                }
            },
            0u64,
            u64::max,
        );
        let reduced_dev = DeviceBuffer::from_slice(&reduced);

        // ColorRemovedOp: frontier vertices beating their reduction get
        // this iteration's color.
        ops::compute(dev, "ar::color_removed_op", &frontier, |t, v| {
            // Frontier position == thread id because compute maps 1:1.
            let i = t.tid();
            let m = t.read(&reduced_dev, i);
            let rv = t.read(&rand, v as usize);
            if rv > m {
                t.write(&colors, v as usize, color);
            }
        });

        // Contract the frontier to the still-uncolored vertices.
        frontier = ops::filter(dev, "ar::filter_uncolored", &frontier, |t, v| {
            t.read(&colors, v as usize) == 0
        });
        if iter_span.is_recording() {
            iter_span.attr("frontier_uncolored", frontier.len());
            iter_span.attr("colors_so_far", color);
            iter_span.set_model_range(iter_model0, dev.elapsed_ms());
        }
        !frontier.is_empty()
    });

    let model_ms = dev.elapsed_ms();
    let launches = dev.profile().launches - launches_before;
    ColoringResult::new(colors.to_vec(), iterations, model_ms, launches).with_profile(dev.profile())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gunrock_is::{self, IsConfig};
    use crate::verify::assert_proper;
    use gc_graph::generators::{complete, cycle, erdos_renyi, grid2d, path, star, Stencil2d};

    #[test]
    fn colors_fixed_topologies() {
        for g in [path(12), cycle(9), star(15), complete(5)] {
            let r = gunrock_ar(&g, 4);
            assert_proper(&g, r.coloring.as_slice());
        }
    }

    #[test]
    fn colors_random_graph() {
        let g = erdos_renyi(300, 0.02, 8);
        let r = gunrock_ar(&g, 2);
        assert_proper(&g, r.coloring.as_slice());
    }

    #[test]
    fn colors_mesh() {
        let g = grid2d(12, 12, Stencil2d::FivePoint);
        let r = gunrock_ar(&g, 1);
        assert_proper(&g, r.coloring.as_slice());
    }

    #[test]
    fn empty_graph_one_iteration() {
        let g = Csr::empty(6);
        let r = gunrock_ar(&g, 0);
        assert_proper(&g, r.coloring.as_slice());
        assert_eq!(r.num_colors, 1);
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi(200, 0.03, 1);
        assert_eq!(gunrock_ar(&g, 6).coloring, gunrock_ar(&g, 6).coloring);
    }

    #[test]
    fn one_color_per_iteration() {
        let g = erdos_renyi(200, 0.03, 1);
        let r = gunrock_ar(&g, 6);
        // Colors are assigned one per iteration, so the count of colors
        // equals the number of *coloring* iterations (final iteration
        // only drains the frontier).
        assert!(r.num_colors <= r.iterations);
    }

    #[test]
    fn ar_is_much_slower_than_is() {
        // Table II: AR is the baseline everything else speeds up from.
        let g = erdos_renyi(800, 0.01, 3);
        let ar = gunrock_ar(&g, 5);
        let is = gunrock_is::gunrock_is(&g, 5, IsConfig::min_max());
        assert_proper(&g, ar.coloring.as_slice());
        assert!(
            ar.model_ms > 3.0 * is.model_ms,
            "AR {} ms vs IS {} ms",
            ar.model_ms,
            is.model_ms
        );
    }

    #[test]
    fn ar_launches_many_kernels() {
        let g = path(100);
        let r = gunrock_ar(&g, 0);
        // At least the full pipeline per iteration.
        assert!(r.kernel_launches as f64 >= 6.0 * r.iterations as f64);
    }
}
