//! `Gunrock/Color_AR` — Algorithm 7: advance + neighbor-reduce coloring.
//!
//! Replaces the serial per-vertex neighbor loop of the IS kernel with a
//! load-balanced `advance` (one thread per *edge*) followed by a
//! segmented max-reduction over each neighbor list. Perfectly balanced —
//! and, exactly as the paper measures, much slower end-to-end: every
//! iteration costs a whole pipeline of kernels (degree, scan, gather,
//! map, segmented reduce, color, filter) plus their synchronizations,
//! and the reduce operator can only produce one comparison per pass, so
//! only one color is assigned per iteration.

use gc_graph::Csr;
use gc_gunrock::{ops, DeviceCsr, Enactor, Frontier};
use gc_vgpu::rng::vertex_weight;
use gc_vgpu::{Device, DeviceBuffer};

use crate::color::ColoringResult;

/// Safety cap on iterations.
const MAX_ITERATIONS: u32 = 100_000;

/// Runs Algorithm 7 on a fresh K40c-model device.
pub fn gunrock_ar(g: &Csr, seed: u64) -> ColoringResult {
    let dev = Device::k40c();
    run_on(&dev, g, seed)
}

/// Runs the full-width (pre-compaction, uncaptured) Algorithm 7 on a
/// fresh K40c-model device — the paper-shaped baseline.
pub fn gunrock_ar_full(g: &Csr, seed: u64) -> ColoringResult {
    let dev = Device::k40c();
    run_on_full(&dev, g, seed)
}

/// Runs Algorithm 7 on the provided device with the compacted frontier
/// (the default path).
///
/// The whole per-iteration pipeline — advance, map, segmented reduce,
/// color, contraction — is captured once as a [`gc_vgpu::LaunchGraph`]
/// and replayed each iteration, so the fixed launch overhead of AR's
/// seven-kernel pipeline is paid once per iteration. The iteration
/// number (the color to hand out) and the frontier are resolved at
/// replay time; the contraction swaps the next frontier in between
/// replays, so each replay launches over exactly the still-uncolored
/// vertices.
pub fn run_on(dev: &Device, g: &Csr, seed: u64) -> ColoringResult {
    use std::cell::{Cell, RefCell};

    let _pool = gc_vgpu::pool::lease();
    let n = g.num_vertices();
    let csr = DeviceCsr::upload(dev, g);
    let colors = DeviceBuffer::<u32>::zeroed(n);
    let rand = DeviceBuffer::<u64>::zeroed(n);
    dev.reset();
    let launches_before = dev.profile().launches;

    dev.launch("ar::init_random", n, |t| {
        let v = t.tid();
        t.charge(12);
        t.write(&rand, v, vertex_weight(seed, v as u32));
    });

    let frontier = RefCell::new(Frontier::all(n));
    let round = Cell::new(0u32);
    let left_cell = Cell::new(0u32);
    let pipeline = dev.capture("ar::iteration", || {
        let color = round.get() + 1;
        let cur = frontier.borrow();

        // Neighbor-reduce: max random number among *uncolored* neighbors
        // of every frontier vertex.
        let reduced = ops::neighbor_reduce(
            dev,
            "ar::neighbor_reduce",
            &csr,
            &cur,
            |t, _src, dst| {
                if t.read(&colors, dst as usize) == 0 {
                    t.read(&rand, dst as usize)
                } else {
                    0
                }
            },
            0u64,
            u64::max,
        );
        let reduced_dev = DeviceBuffer::from_slice(&reduced);

        // ColorRemovedOp: frontier vertices beating their reduction get
        // this iteration's color. No colored-guard is needed: the
        // contraction keeps the frontier uncolored-only.
        ops::compute(dev, "ar::color_removed_op", &cur, |t, v| {
            // Frontier position == thread id because compute maps 1:1.
            let i = t.tid();
            let m = t.read(&reduced_dev, i);
            let rv = t.read(&rand, v as usize);
            if rv > m {
                t.write(&colors, v as usize, color);
            }
        });

        // Contract the frontier to the still-uncolored vertices.
        let next = ops::filter(dev, "ar::filter_uncolored", &cur, |t, v| {
            t.read(&colors, v as usize) == 0
        });
        left_cell.set(next.len() as u32);
        drop(cur);
        *frontier.borrow_mut() = next;
    });

    let mut enactor = Enactor::new(dev).with_max_iterations(MAX_ITERATIONS);
    let iterations = enactor.run(|iteration| {
        // One span per bulk-synchronous iteration: the replay span the
        // device emits below nests inside it on the tracing thread.
        let mut iter_span = gc_telemetry::span("iteration");
        let iter_model0 = if iter_span.is_recording() {
            dev.elapsed_ms()
        } else {
            0.0
        };
        iter_span.attr("iteration", iteration);
        round.set(iteration);
        dev.replay(&pipeline);
        if iter_span.is_recording() {
            iter_span.attr("frontier_uncolored", left_cell.get());
            iter_span.attr("colors_so_far", iteration + 1);
            iter_span.set_model_range(iter_model0, dev.elapsed_ms());
        }
        left_cell.get() > 0
    });

    let model_ms = dev.elapsed_ms();
    let launches = dev.profile().launches - launches_before;
    ColoringResult::new(colors.to_vec(), iterations, model_ms, launches).with_profile(dev.profile())
}

/// Runs Algorithm 7 full-width, as the paper's Gunrock implementation
/// launched it before frontier compaction: every operator spans all `n`
/// vertices every iteration (the advance enumerates every vertex's
/// neighbor list) and a full-width count kernel tests convergence. The
/// color operator gains a colored-vertex guard the compacted path gets
/// for free from its contraction. Kept as the pre-compaction baseline
/// for the benchmark harness and the equivalence tests.
pub fn run_on_full(dev: &Device, g: &Csr, seed: u64) -> ColoringResult {
    let n = g.num_vertices();
    let csr = DeviceCsr::upload(dev, g);
    let colors = DeviceBuffer::<u32>::zeroed(n);
    let rand = DeviceBuffer::<u64>::zeroed(n);
    dev.reset();
    let launches_before = dev.profile().launches;

    dev.launch("ar::init_random", n, |t| {
        let v = t.tid();
        t.charge(12);
        t.write(&rand, v, vertex_weight(seed, v as u32));
    });

    let frontier = Frontier::all(n);
    let remaining = DeviceBuffer::<u32>::zeroed(1);
    let mut enactor = Enactor::new(dev).with_max_iterations(MAX_ITERATIONS);
    let iterations = enactor.run(|iteration| {
        let mut iter_span = gc_telemetry::span("iteration");
        let iter_model0 = if iter_span.is_recording() {
            dev.elapsed_ms()
        } else {
            0.0
        };
        iter_span.attr("iteration", iteration);
        let color = iteration + 1;

        let reduced = ops::neighbor_reduce(
            dev,
            "ar::neighbor_reduce",
            &csr,
            &frontier,
            |t, _src, dst| {
                if t.read(&colors, dst as usize) == 0 {
                    t.read(&rand, dst as usize)
                } else {
                    0
                }
            },
            0u64,
            u64::max,
        );
        let reduced_dev = DeviceBuffer::from_slice(&reduced);

        ops::compute(dev, "ar::color_removed_op", &frontier, |t, v| {
            // Already-colored vertices must keep their color: their max
            // over uncolored neighbors shrinks over time and would let
            // them "win" again.
            if t.read(&colors, v as usize) != 0 {
                return;
            }
            let i = t.tid();
            let m = t.read(&reduced_dev, i);
            let rv = t.read(&rand, v as usize);
            if rv > m {
                t.write(&colors, v as usize, color);
            }
        });

        // Full-width convergence test: count the still-uncolored.
        remaining.set(0, 0);
        dev.launch("ar::check_op", n, |t| {
            let v = t.tid();
            if t.read(&colors, v) == 0 {
                t.atomic_add(&remaining, 0, 1);
            }
        });
        let left = dev.download(&remaining)[0];
        if iter_span.is_recording() {
            iter_span.attr("frontier_uncolored", left);
            iter_span.attr("colors_so_far", color);
            iter_span.set_model_range(iter_model0, dev.elapsed_ms());
        }
        left > 0
    });

    let model_ms = dev.elapsed_ms();
    let launches = dev.profile().launches - launches_before;
    ColoringResult::new(colors.to_vec(), iterations, model_ms, launches).with_profile(dev.profile())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gunrock_is::{self, IsConfig};
    use crate::verify::assert_proper;
    use gc_graph::generators::{complete, cycle, erdos_renyi, grid2d, path, star, Stencil2d};

    #[test]
    fn colors_fixed_topologies() {
        for g in [path(12), cycle(9), star(15), complete(5)] {
            let r = gunrock_ar(&g, 4);
            assert_proper(&g, r.coloring.as_slice());
        }
    }

    #[test]
    fn colors_random_graph() {
        let g = erdos_renyi(300, 0.02, 8);
        let r = gunrock_ar(&g, 2);
        assert_proper(&g, r.coloring.as_slice());
    }

    #[test]
    fn colors_mesh() {
        let g = grid2d(12, 12, Stencil2d::FivePoint);
        let r = gunrock_ar(&g, 1);
        assert_proper(&g, r.coloring.as_slice());
    }

    #[test]
    fn empty_graph_one_iteration() {
        let g = Csr::empty(6);
        let r = gunrock_ar(&g, 0);
        assert_proper(&g, r.coloring.as_slice());
        assert_eq!(r.num_colors, 1);
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi(200, 0.03, 1);
        assert_eq!(gunrock_ar(&g, 6).coloring, gunrock_ar(&g, 6).coloring);
    }

    #[test]
    fn one_color_per_iteration() {
        let g = erdos_renyi(200, 0.03, 1);
        let r = gunrock_ar(&g, 6);
        // Colors are assigned one per iteration, so the count of colors
        // equals the number of *coloring* iterations (final iteration
        // only drains the frontier).
        assert!(r.num_colors <= r.iterations);
    }

    #[test]
    fn ar_is_much_slower_than_is() {
        // Table II: AR is the baseline everything else speeds up from.
        // The paper measured the launch-per-operator shape, so compare
        // the uncaptured full-width arms; with captured pipelines the
        // gap narrows (AR's seven launches per iteration collapse to
        // one) but stays — see ar_stays_slower_than_is_when_captured.
        let g = erdos_renyi(800, 0.01, 3);
        let ar = run_on_full(&Device::k40c(), &g, 5);
        let is = gunrock_is::gunrock_is(&g, 5, IsConfig::full_width());
        assert_proper(&g, ar.coloring.as_slice());
        assert!(
            ar.model_ms > 3.0 * is.model_ms,
            "AR {} ms vs IS {} ms",
            ar.model_ms,
            is.model_ms
        );
    }

    #[test]
    fn ar_stays_slower_than_is_when_captured() {
        // Launch graphs amortize AR's per-operator overhead but cannot
        // fix its one-comparison-per-pass reduction: it still runs more
        // iterations over a whole advance/reduce pipeline.
        let g = erdos_renyi(800, 0.01, 3);
        let ar = gunrock_ar(&g, 5);
        let is = gunrock_is::gunrock_is(&g, 5, IsConfig::min_max());
        assert!(
            ar.model_ms > is.model_ms,
            "AR {} ms vs IS {} ms",
            ar.model_ms,
            is.model_ms
        );
    }

    #[test]
    fn ar_runs_many_kernels_per_iteration() {
        let g = path(100);
        let r = gunrock_ar(&g, 0);
        let p = r.profile.as_ref().unwrap();
        // The full pipeline still runs every iteration — inside one
        // replayed launch graph per iteration.
        assert_eq!(p.graph_replays, r.iterations as u64);
        assert!(p.graph_kernels >= 6 * r.iterations as u64);
        assert!(r.kernel_launches > r.iterations as u64);
        assert!(p.launch_overhead_saved_cycles > 0.0);
    }

    #[test]
    fn compacted_matches_full_width() {
        for g in [
            erdos_renyi(300, 0.02, 8),
            grid2d(12, 12, Stencil2d::FivePoint),
            star(15),
            complete(5),
        ] {
            let compacted = gunrock_ar(&g, 2);
            let full = run_on_full(&Device::k40c(), &g, 2);
            assert_eq!(compacted.coloring, full.coloring);
            assert_eq!(compacted.iterations, full.iterations);
            assert!(compacted.kernel_launches < full.kernel_launches);
        }
    }

    #[test]
    fn compacted_does_much_less_simulated_work() {
        // The frontier sheds one color class per iteration, so the
        // compacted pipeline's thread work shrinks every round while
        // the full-width baseline re-scans all n vertices (and every
        // edge) until the last vertex is colored.
        let g = erdos_renyi(600, 0.01, 3);
        let compacted = gunrock_ar(&g, 5);
        let full = run_on_full(&Device::k40c(), &g, 5);
        let (c, f) = (
            compacted.profile.unwrap().thread_executions,
            full.profile.unwrap().thread_executions,
        );
        assert!(
            f as f64 >= 1.5 * c as f64,
            "full {f} vs compacted {c} thread executions"
        );
    }
}
