//! The uniform registry of coloring implementations.
//!
//! Every implementation of the paper's Figure 1 legend is exposed behind
//! one interface so the benches, examples, and integration tests can
//! sweep "all implementations × all datasets" the way the evaluation
//! section does.

use gc_graph::Csr;

use crate::color::ColoringResult;
use crate::greedy::Ordering;
use crate::gunrock_hash::HashConfig;
use crate::gunrock_is::IsConfig;
use crate::hybrid::HybridConfig;
use crate::{
    gblas_is, gblas_jpl, gblas_mis, gm_cpu, gm_gpu, greedy, gunrock_ar, gunrock_hash, gunrock_is,
    hybrid, jp_cpu, naumov,
};

/// Which algorithm a [`Colorer`] runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ColorerKind {
    CpuGreedy(Ordering),
    CpuJonesPlassmann,
    GunrockIs(IsConfig),
    GunrockHash(HashConfig),
    GunrockAr,
    /// The paper-shaped AR baseline: full-width launches, no frontier
    /// compaction, no launch-graph capture. Anchors the Table II ladder.
    GunrockArFull,
    GblasIs,
    /// Short-cutting GraphBLAST IS (quality tier): Luby winners take
    /// the lowest legal color instead of the round index.
    GblasIsSc,
    GblasMis,
    GblasJpl,
    NaumovJpl,
    NaumovCc,
    /// Quality tier: min-max first-fit Jones-Plassmann on device,
    /// sequential greedy on the straggler tail (Rai & Pai).
    HybridJp(HybridConfig),
    /// Future-work extension (paper §VI): Gebremedhin-Manne on the GPU.
    GebremedhinManne,
    /// Related-work baseline (§II.A): shared-memory Gebremedhin-Manne
    /// on host threads.
    GebremedhinManneCpu,
}

/// A named coloring implementation.
#[derive(Clone, Debug)]
pub struct Colorer {
    name: &'static str,
    kind: ColorerKind,
}

impl Colorer {
    pub fn new(name: &'static str, kind: ColorerKind) -> Self {
        Colorer { name, kind }
    }

    /// The Figure 1 legend name, e.g. `"Gunrock/Color_IS"`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn kind(&self) -> ColorerKind {
        self.kind
    }

    /// Whether this implementation runs on the (virtual) GPU.
    pub fn is_gpu(&self) -> bool {
        !matches!(
            self.kind,
            ColorerKind::CpuGreedy(_)
                | ColorerKind::CpuJonesPlassmann
                | ColorerKind::GebremedhinManneCpu
        )
    }

    /// Runs the algorithm. When the calling thread has a current
    /// `gc_telemetry::Tracer`, the whole run is wrapped in a `color`
    /// span (the parent of the implementation's per-iteration spans and
    /// the device's kernel events) carrying the run's headline metrics
    /// as attributes.
    pub fn run(&self, g: &Csr, seed: u64) -> ColoringResult {
        let mut span = gc_telemetry::span("color");
        span.attr("colorer", self.name);
        span.attr("vertices", g.num_vertices());
        span.attr("edges", g.num_edges());
        let result = self.run_inner(g, seed);
        if span.is_recording() {
            span.attr("iterations", result.iterations);
            span.attr("num_colors", result.num_colors);
            span.attr("kernel_launches", result.kernel_launches);
            span.set_model_range(0.0, result.model_ms);
        }
        result
    }

    /// Runs the algorithm on a caller-supplied device instead of a
    /// freshly created one. Returns `None` for the CPU implementations,
    /// which have no device to run on.
    ///
    /// This is the sharded runner's per-device entry point (`gc-shard`):
    /// each shard worker owns a `Device` and colors its local subgraph
    /// through this. Note that every implementation resets the device's
    /// model clock and profiler at the start of its run, so callers that
    /// meter extra work on the same device (halo uploads, conflict
    /// kernels) must do so *after* this returns.
    pub fn run_on_device(
        &self,
        dev: &gc_vgpu::Device,
        g: &Csr,
        seed: u64,
    ) -> Option<ColoringResult> {
        match self.kind {
            ColorerKind::CpuGreedy(_)
            | ColorerKind::CpuJonesPlassmann
            | ColorerKind::GebremedhinManneCpu => None,
            ColorerKind::GunrockIs(cfg) => Some(gunrock_is::run_on(dev, g, seed, cfg)),
            ColorerKind::GunrockHash(cfg) => Some(gunrock_hash::run_on(dev, g, seed, cfg)),
            ColorerKind::GunrockAr => Some(gunrock_ar::run_on(dev, g, seed)),
            ColorerKind::GunrockArFull => Some(gunrock_ar::run_on_full(dev, g, seed)),
            ColorerKind::GblasIs => Some(gblas_is::run_on(dev, g, seed)),
            ColorerKind::GblasIsSc => Some(gblas_is::run_on_sc(dev, g, seed)),
            ColorerKind::GblasMis => Some(gblas_mis::run_on(dev, g, seed)),
            ColorerKind::GblasJpl => Some(gblas_jpl::run_on(dev, g, seed)),
            ColorerKind::NaumovJpl => Some(naumov::jpl_on(dev, g, seed)),
            ColorerKind::NaumovCc => Some(naumov::cc_on(dev, g, seed)),
            ColorerKind::GebremedhinManne => Some(gm_gpu::run_on(dev, g, seed)),
            ColorerKind::HybridJp(cfg) => Some(hybrid::run_on(dev, g, seed, cfg)),
        }
    }

    fn run_inner(&self, g: &Csr, seed: u64) -> ColoringResult {
        match self.kind {
            ColorerKind::CpuGreedy(ord) => greedy::greedy(g, ord, seed),
            ColorerKind::CpuJonesPlassmann => jp_cpu::jones_plassmann_cpu(g, seed),
            ColorerKind::GunrockIs(cfg) => gunrock_is::gunrock_is(g, seed, cfg),
            ColorerKind::GunrockHash(cfg) => gunrock_hash::gunrock_hash(g, seed, cfg),
            ColorerKind::GunrockAr => gunrock_ar::gunrock_ar(g, seed),
            ColorerKind::GunrockArFull => gunrock_ar::gunrock_ar_full(g, seed),
            ColorerKind::GblasIs => gblas_is::gblas_is(g, seed),
            ColorerKind::GblasIsSc => gblas_is::gblas_is_sc(g, seed),
            ColorerKind::GblasMis => gblas_mis::gblas_mis(g, seed),
            ColorerKind::GblasJpl => gblas_jpl::gblas_jpl(g, seed),
            ColorerKind::NaumovJpl => naumov::naumov_jpl(g, seed),
            ColorerKind::NaumovCc => naumov::naumov_cc(g, seed),
            ColorerKind::GebremedhinManne => gm_gpu::gebremedhin_manne(g, seed),
            ColorerKind::GebremedhinManneCpu => gm_cpu::gebremedhin_manne_cpu(g, seed),
            ColorerKind::HybridJp(cfg) => hybrid::run_on(&gc_vgpu::Device::k40c(), g, seed, cfg),
        }
    }
}

/// The nine implementations of the paper's Figure 1, in legend order.
///
/// ```
/// use gc_core::runner::all_colorers;
/// use gc_core::verify::is_proper;
/// use gc_graph::generators::cycle;
///
/// let g = cycle(9);
/// for colorer in all_colorers() {
///     let r = colorer.run(&g, 42);
///     assert!(is_proper(&g, r.coloring.as_slice()).is_ok(), "{}", colorer.name());
/// }
/// ```
pub fn all_colorers() -> Vec<Colorer> {
    vec![
        Colorer::new(
            "CPU/Color_Greedy",
            ColorerKind::CpuGreedy(Ordering::Natural),
        ),
        Colorer::new("GraphBLAST/Color_IS", ColorerKind::GblasIs),
        Colorer::new("GraphBLAST/Color_JPL", ColorerKind::GblasJpl),
        Colorer::new("GraphBLAST/Color_MIS", ColorerKind::GblasMis),
        Colorer::new("Gunrock/Color_AR", ColorerKind::GunrockAr),
        Colorer::new(
            "Gunrock/Color_Hash",
            ColorerKind::GunrockHash(HashConfig::default()),
        ),
        Colorer::new(
            "Gunrock/Color_IS",
            ColorerKind::GunrockIs(IsConfig::min_max()),
        ),
        Colorer::new("Naumov/Color_CC", ColorerKind::NaumovCc),
        Colorer::new("Naumov/Color_JPL", ColorerKind::NaumovJpl),
    ]
}

/// The paper's §VI future-work extensions, implemented in this
/// reproduction but kept out of the Figure 1 registry (the paper did
/// not evaluate them).
pub fn extension_colorers() -> Vec<Colorer> {
    vec![
        Colorer::new("Extension/Color_GM", ColorerKind::GebremedhinManne),
        Colorer::new(
            "Extension/Color_IS_LDF",
            ColorerKind::GunrockIs(IsConfig::largest_degree_first()),
        ),
        Colorer::new(
            "Extension/Color_IS_LB",
            ColorerKind::GunrockIs(IsConfig::min_max_load_balanced()),
        ),
        Colorer::new(
            "CPU/Color_Greedy_SDL",
            ColorerKind::CpuGreedy(Ordering::SmallestDegreeLast),
        ),
        Colorer::new("CPU/Color_JP", ColorerKind::CpuJonesPlassmann),
        Colorer::new("CPU/Color_GM", ColorerKind::GebremedhinManneCpu),
        Colorer::new(
            "Hybrid/Color_JP",
            ColorerKind::HybridJp(HybridConfig::default()),
        ),
        Colorer::new(
            "Gunrock/Color_IS_SC",
            ColorerKind::GunrockIs(IsConfig::short_cut()),
        ),
        Colorer::new("GraphBLAST/Color_IS_SC", ColorerKind::GblasIsSc),
    ]
}

/// Looks up a colorer by name, searching the Figure 1 legend first and
/// the §VI extension registry second (so `"CPU/Color_JP"`,
/// `"Extension/Color_GM"`, etc. resolve too). This is the service
/// layer's explicit-override path: any registered implementation can be
/// requested by name.
pub fn colorer_by_name(name: &str) -> Option<Colorer> {
    all_colorers()
        .into_iter()
        .chain(extension_colorers())
        .find(|c| c.name() == name)
}

/// Every registered implementation: the Figure 1 legend plus the §VI
/// extensions, in registry order.
pub fn all_known_colorers() -> Vec<Colorer> {
    all_colorers()
        .into_iter()
        .chain(extension_colorers())
        .collect()
}

/// The Table II ladder of Gunrock optimizations, slowest first.
///
/// Every row keeps the paper's launch shape — full-width operators,
/// one dispatch per operator, no frontier compaction or launch-graph
/// capture — because Table II isolates the paper's *algorithmic* ladder
/// (advance-reduce → hashing → independent sets → min-max). The
/// compaction and capture optimizations this reproduction adds on top
/// are measured separately by the coloring benchmark's before/after
/// harness.
pub fn table2_variants() -> Vec<Colorer> {
    vec![
        Colorer::new("Baseline (Advance-Reduce)", ColorerKind::GunrockArFull),
        Colorer::new(
            "Hash Color",
            ColorerKind::GunrockHash(HashConfig::full_width()),
        ),
        Colorer::new(
            "Independent Set with Atomics",
            ColorerKind::GunrockIs(IsConfig {
                compact_frontier: false,
                ..IsConfig::single_set_atomics()
            }),
        ),
        Colorer::new(
            "Independent Set without Atomics",
            ColorerKind::GunrockIs(IsConfig {
                compact_frontier: false,
                ..IsConfig::single_set_no_atomics()
            }),
        ),
        Colorer::new(
            "Min-Max Independent Set",
            ColorerKind::GunrockIs(IsConfig::full_width()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_proper;
    use gc_graph::generators::erdos_renyi;

    #[test]
    fn registry_has_figure1_legend() {
        let names: Vec<_> = all_colorers().iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 9);
        assert!(names.contains(&"Gunrock/Color_IS"));
        assert!(names.contains(&"GraphBLAST/Color_MIS"));
        assert!(names.contains(&"Naumov/Color_JPL"));
        assert!(names.contains(&"CPU/Color_Greedy"));
    }

    #[test]
    fn every_registered_colorer_is_proper() {
        let g = erdos_renyi(150, 0.04, 3);
        for c in all_colorers() {
            let r = c.run(&g, 7);
            assert_proper(&g, r.coloring.as_slice());
            assert!(r.model_ms > 0.0, "{} reported zero time", c.name());
        }
    }

    #[test]
    fn gpu_flag() {
        assert!(!colorer_by_name("CPU/Color_Greedy").unwrap().is_gpu());
        assert!(colorer_by_name("Gunrock/Color_IS").unwrap().is_gpu());
    }

    #[test]
    fn lookup_by_name() {
        assert!(colorer_by_name("Gunrock/Color_Hash").is_some());
        assert!(colorer_by_name("nope").is_none());
    }

    #[test]
    fn lookup_resolves_extension_names() {
        for ext in extension_colorers() {
            let found = colorer_by_name(ext.name())
                .unwrap_or_else(|| panic!("{} did not resolve", ext.name()));
            assert_eq!(found.kind(), ext.kind());
        }
        assert!(colorer_by_name("CPU/Color_JP").is_some());
        assert!(colorer_by_name("Extension/Color_GM").is_some());
    }

    #[test]
    fn all_known_covers_both_registries() {
        let known = all_known_colorers();
        assert_eq!(
            known.len(),
            all_colorers().len() + extension_colorers().len()
        );
        let names: std::collections::HashSet<_> = known.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), known.len(), "registry names must be unique");
    }

    #[test]
    fn table2_ladder_has_five_rows() {
        assert_eq!(table2_variants().len(), 5);
    }

    #[test]
    fn traced_run_nests_iterations_and_kernels_under_color_span() {
        let g = erdos_renyi(80, 0.05, 11);
        let tracer = gc_telemetry::Tracer::new();
        {
            let _cur = tracer.make_current();
            let r = colorer_by_name("Gunrock/Color_IS").unwrap().run(&g, 3);
            assert_proper(&g, r.coloring.as_slice());
        }
        let records = tracer.records();
        let color = records
            .iter()
            .find(|r| r.name == "color")
            .expect("color span");
        assert!(color
            .attrs
            .iter()
            .any(|(k, v)| k == "colorer" && v == "Gunrock/Color_IS"));
        assert!(color.attrs.iter().any(|(k, _)| k == "iterations"));
        assert!(color.model_dur_ms.unwrap() > 0.0);
        let iter = records
            .iter()
            .find(|r| r.name == "iteration")
            .expect("iteration span");
        assert_eq!(iter.parent, Some(color.id), "iteration nests under color");
        assert!(iter.attrs.iter().any(|(k, _)| k == "frontier_uncolored"));
        let kernel = records
            .iter()
            .find(|r| r.name.starts_with("is::") && r.parent == Some(iter.id))
            .unwrap_or_else(|| panic!("no kernel event under iteration {}", iter.id));
        assert!(kernel.attrs.iter().any(|(k, _)| k == "threads"));
    }

    #[test]
    fn every_gpu_colorer_emits_iteration_spans_when_traced() {
        let g = erdos_renyi(60, 0.06, 2);
        for c in all_colorers().into_iter().filter(|c| c.is_gpu()) {
            let tracer = gc_telemetry::Tracer::new();
            {
                let _cur = tracer.make_current();
                c.run(&g, 5);
            }
            let records = tracer.records();
            assert!(
                records.iter().any(|r| r.name == "iteration"),
                "{} emitted no iteration span",
                c.name()
            );
        }
    }

    #[test]
    fn untraced_run_records_nothing() {
        let g = erdos_renyi(40, 0.05, 1);
        let tracer = gc_telemetry::Tracer::new();
        colorer_by_name("Naumov/Color_JPL").unwrap().run(&g, 1);
        assert!(tracer.records().is_empty());
    }
}
