//! The classic sequential greedy coloring (`CPU/Color_Greedy`).
//!
//! Colors vertices in a chosen order, giving each the minimum color
//! absent from its already-colored neighbors. Any ordering yields at most
//! `Δ + 1` colors; the paper's related work discusses how orderings trade
//! quality (smallest-degree-last uses fewest colors in the Allwright et
//! al. study).

use gc_graph::{Csr, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::color::ColoringResult;
use crate::cpu_model::CpuModel;

/// Vertex orderings for the greedy scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// Vertex-id order.
    Natural,
    /// Decreasing degree (Welsh–Powell).
    LargestDegreeFirst,
    /// The smallest-degree-last elimination ordering.
    SmallestDegreeLast,
    /// Uniformly random permutation.
    Random,
}

/// Computes the vertex visit order.
pub fn vertex_order(g: &Csr, ordering: Ordering, seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    match ordering {
        Ordering::Natural => {}
        Ordering::LargestDegreeFirst => {
            order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
        }
        Ordering::SmallestDegreeLast => {
            order = smallest_degree_last(g);
        }
        Ordering::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
    }
    order
}

/// Smallest-degree-last: repeatedly remove a minimum-degree vertex; color
/// in reverse removal order. Implemented with the standard bucket queue,
/// `O(n + m)`.
fn smallest_degree_last(g: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut degree: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        buckets[degree[v]].push(v as VertexId);
    }
    let mut removed = vec![false; n];
    let mut removal: Vec<VertexId> = Vec::with_capacity(n);
    let mut cursor = 0usize;
    while removal.len() < n {
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let v = buckets[cursor].pop().unwrap();
        if removed[v as usize] || degree[v as usize] != cursor {
            continue; // stale bucket entry
        }
        removed[v as usize] = true;
        removal.push(v);
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                let d = degree[u as usize];
                degree[u as usize] = d - 1;
                buckets[d - 1].push(u);
                if d - 1 < cursor {
                    cursor = d - 1;
                }
            }
        }
    }
    removal.reverse();
    removal
}

/// Greedy coloring under the given ordering.
pub fn greedy(g: &Csr, ordering: Ordering, seed: u64) -> ColoringResult {
    let order = vertex_order(g, ordering, seed);
    greedy_in_order(g, &order)
}

/// Greedy coloring visiting vertices exactly in `order`.
pub fn greedy_in_order(g: &Csr, order: &[VertexId]) -> ColoringResult {
    let n = g.num_vertices();
    assert_eq!(
        order.len(),
        n,
        "order must be a permutation of the vertices"
    );
    let mut colors = vec![0u32; n];
    // Reusable mark array: forbidden[c] == v means color c is taken by a
    // neighbor of the vertex currently being colored.
    let mut forbidden: Vec<u32> = vec![u32::MAX; g.max_degree() + 2];
    let mut edge_visits = 0u64;
    for (stamp, &v) in order.iter().enumerate() {
        for &u in g.neighbors(v) {
            edge_visits += 1;
            let cu = colors[u as usize];
            if cu != 0 && (cu as usize) < forbidden.len() {
                forbidden[cu as usize] = stamp as u32;
            }
        }
        let mut c = 1u32;
        while forbidden[c as usize] == stamp as u32 {
            c += 1;
        }
        colors[v as usize] = c;
    }
    let model_ms = CpuModel::xeon_e5().time_ms(n as u64, edge_visits);
    ColoringResult::new(colors, 1, model_ms, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::assert_proper;
    use gc_graph::generators::{complete, crown, cycle, erdos_renyi, path, star};

    #[test]
    fn greedy_path_uses_two_colors() {
        let r = greedy(&path(10), Ordering::Natural, 0);
        assert_proper(&path(10), r.coloring.as_slice());
        assert_eq!(r.num_colors, 2);
    }

    #[test]
    fn greedy_odd_cycle_uses_three() {
        let g = cycle(7);
        let r = greedy(&g, Ordering::Natural, 0);
        assert_proper(&g, r.coloring.as_slice());
        assert_eq!(r.num_colors, 3);
    }

    #[test]
    fn greedy_complete_uses_n() {
        let g = complete(6);
        let r = greedy(&g, Ordering::Natural, 0);
        assert_proper(&g, r.coloring.as_slice());
        assert_eq!(r.num_colors, 6);
    }

    #[test]
    fn greedy_never_exceeds_max_degree_plus_one() {
        for seed in 0..3 {
            let g = erdos_renyi(300, 0.05, seed);
            for ord in [
                Ordering::Natural,
                Ordering::LargestDegreeFirst,
                Ordering::SmallestDegreeLast,
                Ordering::Random,
            ] {
                let r = greedy(&g, ord, seed);
                assert_proper(&g, r.coloring.as_slice());
                assert!(r.num_colors as usize <= g.max_degree() + 1);
            }
        }
    }

    #[test]
    fn sdl_ordering_beats_natural_on_crown() {
        // The crown graph is the classic greedy worst case: natural order
        // can use n colors; smallest-degree-last stays at 2... but on the
        // crown all degrees are equal, so instead check a star plus
        // pendant structure via the ER graph and only require SDL <= LDF.
        let g = crown(6);
        let sdl = greedy(&g, Ordering::SmallestDegreeLast, 0);
        assert_proper(&g, sdl.coloring.as_slice());
        assert!(sdl.num_colors <= 6);
    }

    #[test]
    fn star_is_two_colors_under_all_orderings() {
        let g = star(20);
        for ord in [
            Ordering::Natural,
            Ordering::LargestDegreeFirst,
            Ordering::SmallestDegreeLast,
            Ordering::Random,
        ] {
            assert_eq!(greedy(&g, ord, 1).num_colors, 2);
        }
    }

    #[test]
    fn isolated_vertices_get_color_one() {
        let g = gc_graph::Csr::empty(5);
        let r = greedy(&g, Ordering::Natural, 0);
        assert_eq!(r.coloring.as_slice(), &[1, 1, 1, 1, 1]);
        assert_eq!(r.num_colors, 1);
    }

    #[test]
    fn sdl_is_a_permutation() {
        let g = erdos_renyi(100, 0.08, 3);
        let order = vertex_order(&g, Ordering::SmallestDegreeLast, 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn ldf_orders_by_degree() {
        let g = star(5);
        let order = vertex_order(&g, Ordering::LargestDegreeFirst, 0);
        assert_eq!(order[0], 0); // hub first
    }

    #[test]
    fn random_order_deterministic_by_seed() {
        let g = path(50);
        assert_eq!(
            vertex_order(&g, Ordering::Random, 9),
            vertex_order(&g, Ordering::Random, 9)
        );
        assert_ne!(
            vertex_order(&g, Ordering::Random, 9),
            vertex_order(&g, Ordering::Random, 10)
        );
    }

    #[test]
    fn reports_positive_model_time() {
        let r = greedy(&cycle(100), Ordering::Natural, 0);
        assert!(r.model_ms > 0.0);
        assert_eq!(r.kernel_launches, 0);
    }
}
