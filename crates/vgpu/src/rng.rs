//! Deterministic counter-based random numbers, GPU style.
//!
//! GPU coloring codes assign each vertex a pseudo-random weight by hashing
//! its id (optionally mixed with an iteration counter), instead of keeping
//! stateful per-thread generators. This module provides the same: a
//! statistically-decent integer hash (`wang_hash` strengthened with a
//! final xorshift mix) and helpers for the weight layouts the coloring
//! algorithms need.

/// Thomas Wang's 32-bit integer hash with an extra avalanche round.
#[inline]
pub fn wang_hash(mut x: u32) -> u32 {
    x = (x ^ 61) ^ (x >> 16);
    x = x.wrapping_mul(9);
    x ^= x >> 4;
    x = x.wrapping_mul(0x27d4_eb2d);
    x ^= x >> 15;
    // Extra xorshift finalizer for better low-bit diffusion.
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    x
}

/// Uniform `u32` for (seed, id); distinct seeds give independent streams.
#[inline]
pub fn uniform_u32(seed: u64, id: u32) -> u32 {
    let s = (seed as u32) ^ ((seed >> 32) as u32).rotate_left(16);
    wang_hash(id ^ s.wrapping_mul(0x9e37_79b9)).wrapping_add(wang_hash(s ^ id.rotate_left(11)))
}

/// A *tie-free* 64-bit weight for vertex `id`: the hash in the high bits,
/// the id in the low bits. Any two vertices always compare differently,
/// which Luby-style independent-set selection needs to avoid deadlocks on
/// hash collisions.
#[inline]
pub fn vertex_weight(seed: u64, id: u32) -> u64 {
    ((uniform_u32(seed, id) as u64) << 32) | id as u64
}

/// A tie-free, strictly-positive `i64` weight for vertex `id`, for the
/// GraphBLAS-side algorithms whose colored-vertex sentinel is weight 0.
/// Distinctness: the id occupies the low 32 bits untouched; positivity:
/// bit 62 is forced on and the sign bit off.
#[inline]
pub fn vertex_weight_i64(seed: u64, id: u32) -> i64 {
    let w = ((uniform_u32(seed, id) as u64) << 32) | id as u64;
    ((w | (1 << 62)) & !(1 << 63)) as i64
}

/// Uniform value in `[0, bound)` (for hash-table slot selection).
#[inline]
pub fn uniform_below(seed: u64, id: u32, bound: u32) -> u32 {
    debug_assert!(bound > 0);
    // Multiply-shift range reduction avoids modulo bias well enough here.
    ((uniform_u32(seed, id) as u64 * bound as u64) >> 32) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(wang_hash(12345), wang_hash(12345));
        assert_eq!(uniform_u32(7, 3), uniform_u32(7, 3));
    }

    #[test]
    fn different_ids_differ() {
        let vals: HashSet<u32> = (0..10_000).map(|i| uniform_u32(1, i)).collect();
        // Collisions allowed but must be rare.
        assert!(vals.len() > 9_950, "only {} distinct values", vals.len());
    }

    #[test]
    fn different_seeds_differ() {
        let same = (0..1000)
            .filter(|&i| uniform_u32(1, i) == uniform_u32(2, i))
            .count();
        assert!(same < 5, "{same} ids hashed identically across seeds");
    }

    #[test]
    fn weights_are_tie_free() {
        let w: HashSet<u64> = (0..100_000).map(|i| vertex_weight(9, i)).collect();
        assert_eq!(w.len(), 100_000);
    }

    #[test]
    fn i64_weights_positive_and_distinct() {
        let w: HashSet<i64> = (0..50_000).map(|i| vertex_weight_i64(3, i)).collect();
        assert_eq!(w.len(), 50_000);
        assert!(w.iter().all(|&x| x > 0));
    }

    #[test]
    fn uniform_below_in_range() {
        for i in 0..10_000 {
            let v = uniform_below(3, i, 17);
            assert!(v < 17);
        }
    }

    #[test]
    fn uniform_below_covers_range() {
        let seen: HashSet<u32> = (0..10_000).map(|i| uniform_below(5, i, 8)).collect();
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn bits_are_balanced() {
        // Each of the 32 bits should be set roughly half the time.
        let n = 65_536u32;
        for bit in 0..32 {
            let ones = (0..n)
                .filter(|&i| uniform_u32(11, i) >> bit & 1 == 1)
                .count();
            let frac = ones as f64 / n as f64;
            assert!((0.47..0.53).contains(&frac), "bit {bit} frac {frac}");
        }
    }
}
