//! The device: kernel launches, synchronization, transfers, and the model
//! clock.
//!
//! When the calling thread has a current `gc_telemetry::Tracer`, every
//! launch, sync, and transfer is also reported as a completed child span
//! of whatever span that thread has open (a colorer iteration, a service
//! request), carrying both its wall time and its model-clock extent —
//! the bottom layer of the request → iteration → kernel attribution
//! chain. Without a tracer the only overhead is one boolean check.

use std::sync::Mutex;
use std::time::Instant;

use rayon::prelude::*;

use crate::buffer::DeviceBuffer;
use crate::config::DeviceConfig;
use crate::cost::{kernel_cost, memcpy_cost, LaunchStats};
use crate::profiler::{intern_name, CopyEngine, KernelRecord, ProfileReport, Profiler};
use crate::scalar::Scalar;
use crate::thread::{intern_costs, ConfigCosts, ThreadCounters, ThreadCtx};

/// A simulated GPU. All kernel launches on a device execute on the global
/// rayon pool and advance the device's deterministic model clock.
///
/// ```
/// use gc_vgpu::{Device, DeviceBuffer};
///
/// let dev = Device::k40c();
/// let data = dev.upload(&[1u32, 2, 3, 4]);
/// let out = DeviceBuffer::<u32>::zeroed(4);
/// dev.launch("double", 4, |t| {
///     let i = t.tid();
///     let v = t.read(&data, i);
///     t.write(&out, i, v * 2);
/// });
/// assert_eq!(dev.download(&out), vec![2, 4, 6, 8]);
/// assert!(dev.elapsed_ms() > 0.0); // transfers + one kernel, metered
/// ```
pub struct Device {
    cfg: DeviceConfig,
    /// Cost subset interned once at construction so launches skip the
    /// intern-table lookup.
    costs: &'static ConfigCosts,
    profiler: Mutex<Profiler>,
}

/// Launches with at most this many blocks run inline on the calling
/// thread: below this, rayon's fork-join costs more than it buys.
const SERIAL_BLOCK_LIMIT: usize = 4;

/// Completion handle of an asynchronous transfer
/// ([`Device::upload_async`], [`Device::peer_transfer_async`]).
///
/// The event pins the transfer's completion on the device's *absolute*
/// model clock (the axis that survives [`Device::reset`]), so an upload
/// issued before a colorer's run-start reset can still be awaited
/// meaningfully afterwards. [`Device::wait_event`] bills the waiting
/// device only for the part of the copy its compute since issue did not
/// hide — `max(compute, transfer)` accounting instead of the serial sum
/// the synchronous transfer paths bill.
#[derive(Clone, Copy, Debug)]
pub struct TransferEvent {
    engine: CopyEngine,
    bytes: u64,
    cost_cycles: f64,
    completion_abs: f64,
}

impl TransferEvent {
    /// Bytes the transfer moves.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The copy's full metered cost in cycles (what the synchronous path
    /// would have billed).
    pub fn cost_cycles(&self) -> f64 {
        self.cost_cycles
    }

    /// Completion time on the absolute model clock.
    pub fn completion_abs(&self) -> f64 {
        self.completion_abs
    }
}

/// A captured kernel pipeline (the model's CUDA Graph).
///
/// [`Device::capture`] records the pipeline *builder* — a closure over
/// the device, its buffers, and any host-side loop state — without
/// executing it. Each [`Device::replay`] runs the builder under graph
/// accounting: every interior kernel executes normally and bills its
/// full work (compute, memory, atomics, divergence), but the fixed
/// per-launch overhead is billed **once for the whole pipeline** instead
/// of once per kernel.
///
/// Because the builder re-runs on every replay, dynamic extents resolve
/// at replay time: a pipeline that launches over a compacted frontier
/// reads the *current* frontier each round, so captured iterations stay
/// bit-identical to uncaptured ones — only the fixed overhead differs.
pub struct LaunchGraph<'a> {
    name: &'static str,
    body: Box<dyn Fn() + 'a>,
}

impl std::fmt::Debug for LaunchGraph<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LaunchGraph({})", self.name)
    }
}

impl LaunchGraph<'_> {
    /// The name given at capture.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Device {
    pub fn new(cfg: DeviceConfig) -> Self {
        Device {
            costs: intern_costs(&cfg),
            profiler: Mutex::new(Profiler::new(cfg.fast_meter)),
            cfg,
        }
    }

    /// Whether this device runs in fast-meter mode (see
    /// [`DeviceConfig::fast_meter`]): identical model metrics, no
    /// per-kernel history, no telemetry spans.
    #[inline]
    pub fn is_fast_meter(&self) -> bool {
        self.cfg.fast_meter
    }

    /// `true` when this call should emit telemetry spans: a tracer is
    /// current *and* the device is not in fast-meter mode.
    #[inline]
    fn traced(&self) -> bool {
        !self.cfg.fast_meter && gc_telemetry::enabled()
    }

    /// The paper's GPU.
    pub fn k40c() -> Self {
        Self::new(DeviceConfig::k40c())
    }

    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Launches `n_threads` simulated threads running `kernel`.
    ///
    /// Threads are grouped into warps of `cfg.warp_size` and blocks of
    /// `cfg.block_size`; blocks execute concurrently on the rayon pool
    /// while threads within a warp run sequentially (their *modeled* cost
    /// is lock-step: the warp bills the max of its threads, so divergence
    /// and intra-warp load imbalance are priced exactly as the paper
    /// describes for its serial neighbor loops).
    ///
    /// The launch advances the model clock and records a profiler entry.
    pub fn launch<F>(&self, name: &str, n_threads: usize, kernel: F)
    where
        F: Fn(&mut ThreadCtx) + Sync,
    {
        let trace_start = self.traced().then(|| (Instant::now(), self.elapsed_ms()));
        let name = intern_name(name);
        let costs = self.costs;
        let warp = self.cfg.warp_size as usize;
        let block = self.cfg.block_size as usize;
        let warp_size = self.cfg.warp_size;

        // Executes one block serially, accumulating its launch stats.
        // Stats merging is integer sums plus maxes, so any partition of
        // blocks into tasks yields bit-identical totals.
        let run_block = |b: usize| {
            let mut block_stats = LaunchStats::default();
            let start = b * block;
            let end = ((b + 1) * block).min(n_threads);
            let mut t = start;
            while t < end {
                let warp_end = (t + warp).min(end);
                let mut warp_max = ThreadCounters::default();
                let mut warp_sum = ThreadCounters::default();
                // One context serves the whole warp: `begin_lane` resets
                // the per-thread counters while the warp-scoped access
                // tracker rides along, replacing the old per-thread
                // construct/teardown and tracker copy-in/copy-out.
                let mut ctx = ThreadCtx::new(t, warp_size, costs);
                for tid in t..warp_end {
                    ctx.begin_lane(tid);
                    kernel(&mut ctx);
                    let c = ctx.counters();
                    warp_max.cycles = warp_max.cycles.max(c.cycles);
                    warp_max.bytes = warp_max.bytes.max(c.bytes);
                    warp_sum.merge_sum(&c);
                }
                block_stats.add_warp(&warp_max, &warp_sum, (warp_end - t) as u64);
                t = warp_end;
            }
            block_stats
        };

        // Zero threads: no blocks execute. The host still paid for the
        // launch, so overhead is billed and the launch is recorded.
        let stats = if n_threads == 0 {
            LaunchStats::default()
        } else {
            let num_blocks = n_threads.div_ceil(block);
            if num_blocks <= SERIAL_BLOCK_LIMIT {
                // Tiny launch: run inline, skipping fork-join entirely.
                (0..num_blocks)
                    .map(run_block)
                    .fold(LaunchStats::default(), LaunchStats::merge)
            } else {
                // Chunk several blocks per rayon task so the fork-join
                // overhead amortizes (about four tasks per pool thread).
                let chunk = num_blocks
                    .div_ceil(rayon::current_num_threads().max(1) * 4)
                    .max(1);
                let tasks = num_blocks.div_ceil(chunk);
                (0..tasks)
                    .into_par_iter()
                    .map(|task| {
                        let lo = task * chunk;
                        let hi = (lo + chunk).min(num_blocks);
                        (lo..hi)
                            .map(run_block)
                            .fold(LaunchStats::default(), LaunchStats::merge)
                    })
                    .reduce(LaunchStats::default, LaunchStats::merge)
            }
        };

        let cost = kernel_cost(&self.cfg, &stats);
        let cost_cycles = cost.total_cycles;
        self.profiler.lock().unwrap().record_kernel(KernelRecord {
            name,
            threads: stats.threads,
            warps: stats.warps,
            bytes: stats.bytes,
            atomics: stats.atomics,
            cost,
        });
        if let Some((wall0, model0)) = trace_start {
            gc_telemetry::record_complete(
                name,
                wall0,
                Instant::now(),
                Some((model0, self.elapsed_ms())),
                &[
                    ("threads", stats.threads.to_string()),
                    ("bytes", stats.bytes.to_string()),
                    ("atomics", stats.atomics.to_string()),
                    ("cycles", format!("{cost_cycles:.0}")),
                ],
            );
        }
    }

    /// Captures a kernel pipeline for replay, without executing it.
    ///
    /// `body` is the pipeline builder: a closure issuing the launches
    /// (and any host-side glue — rank mirrors, convergence reads,
    /// mid-pipeline frontier swaps) of one round. It may borrow the
    /// device, buffers, and interior-mutable loop state; the returned
    /// graph holds those borrows until dropped.
    pub fn capture<'a, F>(&self, name: &str, body: F) -> LaunchGraph<'a>
    where
        F: Fn() + 'a,
    {
        LaunchGraph {
            name: intern_name(name),
            body: Box::new(body),
        }
    }

    /// Replays a captured pipeline as one metered dispatch.
    ///
    /// Interior kernels execute and bill their work exactly as
    /// uncaptured launches would; the fixed launch overhead is billed
    /// once for the whole graph, so a k-kernel replay saves
    /// `(k - 1) x launch_overhead_cycles` against issuing the kernels
    /// individually. Replays cannot nest on one device. When traced, the
    /// replay reports a `replay` span carrying the graph's name, kernel
    /// count, and resolved extent.
    pub fn replay(&self, graph: &LaunchGraph<'_>) {
        let trace_start = self.traced().then(|| (Instant::now(), self.elapsed_ms()));
        self.profiler.lock().unwrap().begin_replay();
        (graph.body)();
        let (kernels, extent) = self
            .profiler
            .lock()
            .unwrap()
            .end_replay(self.cfg.launch_overhead_cycles as f64);
        if let Some((wall0, model0)) = trace_start {
            gc_telemetry::record_complete(
                "replay",
                wall0,
                Instant::now(),
                Some((model0, self.elapsed_ms())),
                &[
                    ("graph", graph.name.to_string()),
                    ("kernels", kernels.to_string()),
                    ("extent", extent.to_string()),
                ],
            );
        }
    }

    /// Explicit device-wide synchronization (`cudaDeviceSynchronize`);
    /// bills the sync overhead. Kernel launches already include the
    /// implicit same-stream ordering cost.
    pub fn sync(&self) {
        let trace_start = self.traced().then(|| (Instant::now(), self.elapsed_ms()));
        let cycles = self.cfg.sync_overhead_cycles as f64;
        self.profiler.lock().unwrap().record_sync(cycles);
        if let Some((wall0, model0)) = trace_start {
            gc_telemetry::record_complete(
                "vgpu::sync",
                wall0,
                Instant::now(),
                Some((model0, self.elapsed_ms())),
                &[],
            );
        }
    }

    /// Metered host→device transfer.
    pub fn upload<T: Scalar>(&self, data: &[T]) -> DeviceBuffer<T> {
        let trace_start = self.traced().then(|| (Instant::now(), self.elapsed_ms()));
        let bytes = data.len() as u64 * T::BYTES;
        let cycles = memcpy_cost(&self.cfg, bytes);
        self.profiler.lock().unwrap().record_memcpy(bytes, cycles);
        self.trace_memcpy("vgpu::memcpy_h2d", trace_start, bytes);
        DeviceBuffer::from_slice(data)
    }

    /// Metered device→host transfer.
    pub fn download<T: Scalar>(&self, buf: &DeviceBuffer<T>) -> Vec<T> {
        let trace_start = self.traced().then(|| (Instant::now(), self.elapsed_ms()));
        let bytes = buf.size_bytes();
        let cycles = memcpy_cost(&self.cfg, bytes);
        self.profiler.lock().unwrap().record_memcpy(bytes, cycles);
        self.trace_memcpy("vgpu::memcpy_d2h", trace_start, bytes);
        buf.to_vec()
    }

    /// Metered device→device (peer) copy: `src` on this device into
    /// `dst` on `peer`. The buffers must have equal length.
    ///
    /// Both endpoints record the transfer and bill the copy's cycles on
    /// their own clock — a peer copy occupies the link at both ends, so
    /// neither device's timeline can hide behind the other's. The halo
    /// exchange of the sharded runner (`gc-shard`) is built on this.
    pub fn peer_transfer<T: Scalar>(
        &self,
        peer: &Device,
        src: &DeviceBuffer<T>,
        dst: &DeviceBuffer<T>,
    ) {
        assert_eq!(
            src.len(),
            dst.len(),
            "peer_transfer requires equal-length buffers"
        );
        let trace_start = self.traced().then(|| (Instant::now(), self.elapsed_ms()));
        let bytes = src.size_bytes();
        self.profiler
            .lock()
            .unwrap()
            .record_d2d(bytes, memcpy_cost(&self.cfg, bytes));
        peer.profiler
            .lock()
            .unwrap()
            .record_d2d(bytes, memcpy_cost(&peer.cfg, bytes));
        dst.copy_from_slice(&src.to_vec());
        self.trace_memcpy("vgpu::memcpy_d2d", trace_start, bytes);
    }

    /// Asynchronous metered host→device transfer: the data is staged
    /// immediately, but the copy's cost occupies the H2D engine instead
    /// of the device clock. The returned event must be awaited with
    /// [`Device::wait_event`] before the buffer's contents are read by a
    /// kernel; the wait bills only the part of the copy that kernel work
    /// issued in between did not hide.
    ///
    /// The memcpy *counters* bill at the wait too, so an upload issued
    /// before a colorer's run-start [`Device::reset`] is attributed to
    /// the profiling window that actually consumed it.
    pub fn upload_async<T: Scalar>(&self, data: &[T]) -> (DeviceBuffer<T>, TransferEvent) {
        let bytes = data.len() as u64 * T::BYTES;
        let cost = memcpy_cost(&self.cfg, bytes);
        let mut p = self.profiler.lock().unwrap();
        let start = p.abs_cycles().max(p.engine_free_abs(CopyEngine::H2d));
        let completion = start + cost;
        p.occupy_engine(CopyEngine::H2d, completion);
        drop(p);
        (
            DeviceBuffer::from_slice(data),
            TransferEvent {
                engine: CopyEngine::H2d,
                bytes,
                cost_cycles: cost,
                completion_abs: completion,
            },
        )
    }

    /// Asynchronous metered device→device (peer) copy: `src` on this
    /// device into `dst[dst_off..dst_off + src.len()]` on `peer` (the
    /// offset lets halo exchanges land each peer's segment directly in
    /// one concatenated replica, the way a real P2P copy writes to an
    /// offset device pointer).
    ///
    /// The copy is **source-driven**: it starts once the source timeline
    /// has reached the issue point and both peer links are free — the
    /// receiver's compute timeline does not gate the start, because a
    /// P2P push is executed by the source's DMA engine; the receiver
    /// only pays when it waits. The snapshot of `src` lands in `dst`
    /// immediately (model semantics: the importer must not read the
    /// range before awaiting the returned event). Both endpoints' links
    /// are occupied for the copy's duration — a second transfer on
    /// either device queues behind it — and both endpoints count the
    /// transfer and its bytes at issue. No clock cycles are billed here:
    /// the importing device bills its stall (if any) when it calls
    /// [`Device::wait_event`], which is how a round's exchange ends up
    /// costing `max(compute, transfer)` instead of the serial sum
    /// [`Device::peer_transfer`] bills.
    pub fn peer_transfer_async<T: Scalar>(
        &self,
        peer: &Device,
        src: &DeviceBuffer<T>,
        dst: &DeviceBuffer<T>,
        dst_off: usize,
    ) -> TransferEvent {
        assert!(
            dst_off + src.len() <= dst.len(),
            "peer_transfer_async out of range: {} + {} > {}",
            dst_off,
            src.len(),
            dst.len()
        );
        let trace_start = self.traced().then(|| (Instant::now(), self.elapsed_ms()));
        let bytes = src.size_bytes();
        let cost = memcpy_cost(&self.cfg, bytes);
        // Locks are taken one at a time (issue is host-orchestrated, so
        // no interleaving races).
        let (self_abs, self_free) = {
            let p = self.profiler.lock().unwrap();
            (p.abs_cycles(), p.engine_free_abs(CopyEngine::D2d))
        };
        let peer_free = peer
            .profiler
            .lock()
            .unwrap()
            .engine_free_abs(CopyEngine::D2d);
        let start = self_abs.max(self_free).max(peer_free);
        let completion = start + cost;
        {
            let mut p = self.profiler.lock().unwrap();
            p.occupy_engine(CopyEngine::D2d, completion);
            p.record_d2d_issue(bytes);
        }
        {
            let mut p = peer.profiler.lock().unwrap();
            p.occupy_engine(CopyEngine::D2d, completion);
            p.record_d2d_issue(bytes);
        }
        dst.copy_from_slice_at(dst_off, &src.to_vec());
        self.trace_memcpy("vgpu::memcpy_d2d_async", trace_start, bytes);
        TransferEvent {
            engine: CopyEngine::D2d,
            bytes,
            cost_cycles: cost,
            completion_abs: completion,
        }
    }

    /// Blocks this device's timeline until `ev` completes, billing only
    /// the uncovered remainder of the copy (compute issued between the
    /// transfer and this wait hides the rest, credited to the engine's
    /// overlapped counter in the profile).
    pub fn wait_event(&self, ev: &TransferEvent) {
        self.profiler.lock().unwrap().record_async_wait(
            ev.engine,
            ev.bytes,
            ev.cost_cycles,
            ev.completion_abs,
        );
    }

    /// Counts one halo-exchange round on this device's profile (the
    /// sharded runner's per-round telemetry hook).
    pub fn record_halo_round(&self) {
        self.profiler.lock().unwrap().record_halo_round();
    }

    fn trace_memcpy(&self, name: &str, trace_start: Option<(Instant, f64)>, bytes: u64) {
        if let Some((wall0, model0)) = trace_start {
            gc_telemetry::record_complete(
                name,
                wall0,
                Instant::now(),
                Some((model0, self.elapsed_ms())),
                &[("bytes", bytes.to_string())],
            );
        }
    }

    /// Model clock in cycles since construction or the last reset.
    pub fn elapsed_cycles(&self) -> f64 {
        self.profiler.lock().unwrap().clock_cycles()
    }

    /// Model clock in nanoseconds.
    pub fn elapsed_ns(&self) -> f64 {
        self.cfg.cycles_to_ns(self.elapsed_cycles())
    }

    /// Model clock in milliseconds (the unit the paper reports).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns() / 1e6
    }

    /// Clears the model clock and the profiler.
    pub fn reset(&self) {
        self.profiler.lock().unwrap().reset();
    }

    /// Profiling snapshot.
    pub fn profile(&self) -> ProfileReport {
        let mut r = self.profiler.lock().unwrap().report();
        r.launch_overhead_ms = self.cfg.cycles_to_ns(r.launch_overhead_cycles) / 1e6;
        r
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Device({} SMs @ {} GHz)",
            self.cfg.num_sms, self.cfg.clock_ghz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_runs_every_thread_once() {
        let dev = Device::new(DeviceConfig::test_tiny());
        let out = DeviceBuffer::<u32>::zeroed(1000);
        dev.launch("mark", 1000, |t| {
            let tid = t.tid();
            t.write(&out, tid, tid as u32 + 1);
        });
        let v = out.to_vec();
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as u32 + 1);
        }
    }

    #[test]
    fn launch_advances_clock_deterministically() {
        let run = || {
            let dev = Device::new(DeviceConfig::test_tiny());
            let buf = DeviceBuffer::<u32>::zeroed(256);
            dev.launch("incr", 256, |t| {
                let tid = t.tid();
                let v = t.read(&buf, tid);
                t.write(&buf, tid, v + 1);
            });
            dev.elapsed_cycles()
        };
        let a = run();
        assert!(a > 0.0);
        assert_eq!(a, run());
        assert_eq!(a, run());
    }

    #[test]
    fn zero_thread_launch_costs_only_overhead() {
        let dev = Device::new(DeviceConfig::test_tiny());
        dev.launch("noop", 0, |_| {});
        assert_eq!(
            dev.elapsed_cycles(),
            DeviceConfig::test_tiny().launch_overhead_cycles as f64
        );
    }

    #[test]
    fn zero_thread_launch_is_a_metered_noop() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let dev = Device::new(DeviceConfig::test_tiny());
        let ran = AtomicBool::new(false);
        dev.launch("noop", 0, |_| ran.store(true, Ordering::Relaxed));
        assert!(
            !ran.load(Ordering::Relaxed),
            "zero-thread launch must not execute the kernel body"
        );
        let r = dev.profile();
        assert_eq!(r.launches, 1, "the launch is still recorded");
        assert_eq!(r.thread_executions, 0);
        assert_eq!(
            dev.elapsed_cycles(),
            DeviceConfig::test_tiny().launch_overhead_cycles as f64,
            "overhead is still billed"
        );
    }

    #[test]
    fn chunked_launch_matches_per_block_totals() {
        // A launch big enough to spread over many rayon tasks must
        // produce the same stats and clock as any other partition.
        let cfg = DeviceConfig::test_tiny();
        let run = |n: usize| {
            let dev = Device::new(cfg);
            let counter = DeviceBuffer::<u32>::zeroed(1);
            let data = DeviceBuffer::<u32>::zeroed(n);
            dev.launch("work", n, |t| {
                let i = t.tid();
                let v = t.read(&data, i);
                t.write(&data, i, v + 1);
                if i % 3 == 0 {
                    t.atomic_add(&counter, 0, 1);
                }
            });
            (dev.elapsed_cycles(), counter.get(0), dev.profile())
        };
        let (cycles, hits, prof) = run(10_000);
        assert_eq!(hits, 10_000u32.div_ceil(3));
        assert_eq!(prof.thread_executions, 10_000);
        // Deterministic across repeats (different rayon interleavings).
        for _ in 0..3 {
            let (c2, h2, p2) = run(10_000);
            assert_eq!(cycles, c2);
            assert_eq!(hits, h2);
            assert_eq!(
                prof.by_kernel["work"].total_bytes,
                p2.by_kernel["work"].total_bytes
            );
        }
    }

    #[test]
    fn sync_bills_overhead() {
        let dev = Device::new(DeviceConfig::test_tiny());
        dev.sync();
        dev.sync();
        assert_eq!(dev.elapsed_cycles(), 100.0);
        assert_eq!(dev.profile().syncs, 2);
    }

    #[test]
    fn upload_download_roundtrip_and_bill() {
        let dev = Device::new(DeviceConfig::test_tiny());
        let buf = dev.upload(&[1u32, 2, 3]);
        let back = dev.download(&buf);
        assert_eq!(back, vec![1, 2, 3]);
        let r = dev.profile();
        assert_eq!(r.memcpys, 2);
        assert_eq!(r.memcpy_bytes, 24);
        assert!(dev.elapsed_cycles() > 0.0);
    }

    #[test]
    fn atomics_from_many_threads_are_exact() {
        let dev = Device::new(DeviceConfig::test_tiny());
        let counter = DeviceBuffer::<u32>::zeroed(1);
        dev.launch("count", 10_000, |t| {
            t.atomic_add(&counter, 0, 1);
        });
        assert_eq!(counter.get(0), 10_000);
    }

    #[test]
    fn divergent_kernel_costs_more_than_uniform() {
        // Same total work, different distribution: all concentrated in
        // lane 0 of each warp vs spread evenly.
        let total_per_warp = 3200u64;
        let cfg = DeviceConfig::k40c();
        let uniform = {
            let dev = Device::new(cfg);
            dev.launch("uniform", 32 * 100, |t| t.charge(total_per_warp / 32));
            dev.elapsed_cycles()
        };
        let divergent = {
            let dev = Device::new(cfg);
            dev.launch("divergent", 32 * 100, |t| {
                if t.lane() == 0 {
                    t.charge(total_per_warp);
                }
            });
            dev.elapsed_cycles()
        };
        assert!(
            divergent > uniform * 2.0,
            "divergent {divergent} should dwarf uniform {uniform}"
        );
    }

    #[test]
    fn more_launches_cost_more_overhead() {
        let cfg = DeviceConfig::test_tiny();
        let one = {
            let dev = Device::new(cfg);
            dev.launch("k", 64, |t| t.charge(1));
            dev.elapsed_cycles()
        };
        let four = {
            let dev = Device::new(cfg);
            for _ in 0..4 {
                dev.launch("k", 16, |t| t.charge(1));
            }
            dev.elapsed_cycles()
        };
        assert!(four > one + 2.0 * cfg.launch_overhead_cycles as f64);
    }

    #[test]
    fn reset_zeroes_clock() {
        let dev = Device::new(DeviceConfig::test_tiny());
        dev.launch("k", 10, |t| t.charge(5));
        assert!(dev.elapsed_cycles() > 0.0);
        dev.reset();
        assert_eq!(dev.elapsed_cycles(), 0.0);
    }

    #[test]
    fn traced_device_emits_kernel_sync_and_memcpy_events() {
        let tracer = gc_telemetry::Tracer::new();
        {
            let _cur = tracer.make_current();
            let dev = Device::new(DeviceConfig::test_tiny());
            let parent = gc_telemetry::span("iteration");
            let buf = dev.upload(&[1u32, 2, 3]);
            dev.launch("traced_kernel", 3, |t| {
                let i = t.tid();
                let v = t.read(&buf, i);
                t.write(&buf, i, v + 1);
            });
            dev.sync();
            let _ = dev.download(&buf);
            drop(parent);
        }
        let recs = tracer.records();
        let names: Vec<&str> = recs.iter().map(|r| r.name.as_str()).collect();
        for expect in [
            "vgpu::memcpy_h2d",
            "traced_kernel",
            "vgpu::sync",
            "vgpu::memcpy_d2h",
        ] {
            assert!(names.contains(&expect), "missing {expect} in {names:?}");
        }
        let parent_id = recs.iter().find(|r| r.name == "iteration").unwrap().id;
        let kernel = recs.iter().find(|r| r.name == "traced_kernel").unwrap();
        assert_eq!(kernel.parent, Some(parent_id));
        assert!(kernel.model_dur_ms.unwrap() > 0.0);
        assert!(kernel.attrs.iter().any(|(k, v)| k == "threads" && v == "3"));
    }

    #[test]
    fn untraced_device_emits_nothing() {
        let dev = Device::new(DeviceConfig::test_tiny());
        dev.launch("quiet", 8, |t| t.charge(1));
        // No current tracer: nothing to observe beyond the profiler, and
        // the launch must not panic reaching for one.
        assert_eq!(dev.profile().launches, 1);
    }

    #[test]
    fn replay_matches_uncaptured_except_launch_overhead() {
        let cfg = DeviceConfig::test_tiny();
        let n = 500usize;
        let run = |captured: bool| {
            let dev = Device::new(cfg);
            let data = DeviceBuffer::<u32>::zeroed(n);
            let body = |dev: &Device| {
                dev.launch("step1", n, |t| {
                    let i = t.tid();
                    let v = t.read(&data, i);
                    t.write(&data, i, v + 1);
                });
                dev.launch("step2", n, |t| {
                    let i = t.tid();
                    if t.read(&data, i) % 2 == 0 {
                        t.charge(17);
                    }
                });
                dev.launch("step3", n / 2, |t| t.charge(3));
            };
            if captured {
                let graph = dev.capture("pipeline", || body(&dev));
                dev.replay(&graph);
            } else {
                body(&dev);
            }
            (dev.elapsed_cycles(), data.to_vec(), dev.profile())
        };
        let (plain_cycles, plain_data, plain_prof) = run(false);
        let (replay_cycles, replay_data, replay_prof) = run(true);
        assert_eq!(plain_data, replay_data, "replay must be bit-identical");
        // Three kernels collapsed to one dispatch: exactly two launch
        // overheads saved, everything else identical.
        let overhead = cfg.launch_overhead_cycles as f64;
        assert_eq!(plain_cycles - replay_cycles, 2.0 * overhead);
        assert_eq!(plain_prof.launches, 3);
        assert_eq!(replay_prof.launches, 1);
        assert_eq!(replay_prof.graph_replays, 1);
        assert_eq!(replay_prof.graph_kernels, 3);
        assert_eq!(replay_prof.launch_overhead_saved_cycles, 2.0 * overhead);
        assert_eq!(
            plain_prof.thread_executions, replay_prof.thread_executions,
            "replay bills the same simulated work"
        );
    }

    #[test]
    fn capture_does_not_execute() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let dev = Device::new(DeviceConfig::test_tiny());
        let runs = AtomicU32::new(0);
        let graph = dev.capture("lazy", || {
            runs.fetch_add(1, Ordering::Relaxed);
            dev.launch("k", 8, |t| t.charge(1));
        });
        assert_eq!(runs.load(Ordering::Relaxed), 0, "capture must not run");
        assert_eq!(dev.profile().launches, 0);
        dev.replay(&graph);
        dev.replay(&graph);
        assert_eq!(runs.load(Ordering::Relaxed), 2);
        assert_eq!(dev.profile().graph_replays, 2);
    }

    #[test]
    fn replay_resolves_dynamic_extents() {
        use std::cell::Cell;
        let dev = Device::new(DeviceConfig::test_tiny());
        let extent = Cell::new(100usize);
        let counter = DeviceBuffer::<u32>::zeroed(1);
        let graph = dev.capture("shrinking", || {
            dev.launch("work", extent.get(), |t| {
                t.atomic_add(&counter, 0, 1);
            });
        });
        dev.replay(&graph);
        extent.set(7);
        dev.replay(&graph);
        assert_eq!(counter.get(0), 107, "each replay ran the current extent");
    }

    #[test]
    fn traced_replay_emits_replay_span_with_attrs() {
        let tracer = gc_telemetry::Tracer::new();
        {
            let _cur = tracer.make_current();
            let dev = Device::new(DeviceConfig::test_tiny());
            let parent = gc_telemetry::span("iteration");
            let graph = dev.capture("pipe", || {
                dev.launch("ka", 16, |t| t.charge(1));
                dev.launch("kb", 64, |t| t.charge(1));
            });
            dev.replay(&graph);
            drop(parent);
        }
        let recs = tracer.records();
        let replay = recs.iter().find(|r| r.name == "replay").unwrap();
        let attr = |k: &str| {
            replay
                .attrs
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.as_str())
                .unwrap_or_else(|| panic!("replay span missing {k} attr"))
        };
        assert_eq!(attr("graph"), "pipe");
        assert_eq!(attr("kernels"), "2");
        assert_eq!(attr("extent"), "64");
        // Interior kernels are still individually visible, nested under
        // the same parent as the replay itself.
        let parent_id = recs.iter().find(|r| r.name == "iteration").unwrap().id;
        for name in ["ka", "kb", "replay"] {
            let r = recs.iter().find(|r| r.name == name).unwrap();
            assert_eq!(r.parent, Some(parent_id), "{name} parent");
        }
    }

    #[test]
    fn fast_meter_matches_tracked_metrics_without_history() {
        let run = |fast: bool| {
            let cfg = if fast {
                DeviceConfig::test_tiny().fast_meter()
            } else {
                DeviceConfig::test_tiny()
            };
            let dev = Device::new(cfg);
            let data = dev.upload(&(0..2000u32).collect::<Vec<_>>());
            let counter = DeviceBuffer::<u32>::zeroed(1);
            dev.launch("work", 2000, |t| {
                let i = t.tid();
                let v = t.read(&data, i);
                t.write(&data, i, v.wrapping_mul(3));
                if v % 7 == 0 {
                    t.atomic_add(&counter, 0, 1);
                }
            });
            dev.sync();
            (dev.download(&data), dev.elapsed_cycles(), dev.profile())
        };
        let (d_tracked, c_tracked, p_tracked) = run(false);
        let (d_fast, c_fast, p_fast) = run(true);
        assert_eq!(d_tracked, d_fast, "results must be bit-identical");
        assert_eq!(c_tracked, c_fast, "model clock must be bit-identical");
        assert_eq!(p_tracked.launches, p_fast.launches);
        assert_eq!(p_tracked.thread_executions, p_fast.thread_executions);
        assert_eq!(p_tracked.kernel_bytes, p_fast.kernel_bytes);
        assert_eq!(p_tracked.kernel_atomics, p_fast.kernel_atomics);
        assert!(!p_tracked.by_kernel.is_empty());
        assert!(p_fast.by_kernel.is_empty(), "fast meter keeps no history");
    }

    #[test]
    fn fast_meter_device_emits_no_spans_even_when_traced() {
        let tracer = gc_telemetry::Tracer::new();
        {
            let _cur = tracer.make_current();
            let dev = Device::new(DeviceConfig::test_tiny().fast_meter());
            let buf = dev.upload(&[1u32, 2, 3]);
            dev.launch("quiet", 3, |t| {
                let i = t.tid();
                let v = t.read(&buf, i);
                t.write(&buf, i, v + 1);
            });
            dev.sync();
            let _ = dev.download(&buf);
            let graph = dev.capture("pipe", || dev.launch("k", 3, |t| t.charge(1)));
            dev.replay(&graph);
        }
        assert!(
            tracer.records().is_empty(),
            "fast-meter devices must not emit telemetry spans"
        );
    }

    #[test]
    fn profile_reports_launch_overhead_ms() {
        let cfg = DeviceConfig::test_tiny(); // 1 GHz: cycles == ns
        let dev = Device::new(cfg);
        dev.launch("k", 8, |t| t.charge(1));
        let r = dev.profile();
        let want = cfg.launch_overhead_cycles as f64 / 1e6;
        assert!((r.launch_overhead_ms - want).abs() < 1e-12);
    }

    #[test]
    fn async_peer_transfer_overlaps_with_compute() {
        let cfg = DeviceConfig::test_tiny();
        // Serial reference: compute + synchronous transfer.
        let n = 4096usize;
        let serial = {
            let a = Device::new(cfg);
            let b = Device::new(cfg);
            let src = a.upload(&vec![7u32; n]);
            a.reset();
            b.reset();
            let dst = DeviceBuffer::<u32>::zeroed(n);
            a.launch("work", n, |t| t.charge(50));
            a.peer_transfer(&b, &src, &dst);
            (a.elapsed_cycles(), dst.to_vec())
        };
        let overlapped = {
            let a = Device::new(cfg);
            let b = Device::new(cfg);
            let src = a.upload(&vec![7u32; n]);
            a.reset();
            b.reset();
            let dst = DeviceBuffer::<u32>::zeroed(n);
            let ev = a.peer_transfer_async(&b, &src, &dst, 0);
            a.launch("work", n, |t| t.charge(50));
            a.wait_event(&ev);
            let prof = a.profile();
            assert_eq!(prof.d2d_transfers, 1);
            assert!(prof.d2d_overlapped_cycles > 0.0, "some cost must hide");
            assert_eq!(
                prof.d2d_overlapped_cycles + prof.d2d_stall_cycles,
                ev.cost_cycles()
            );
            (a.elapsed_cycles(), dst.to_vec())
        };
        assert_eq!(serial.1, overlapped.1, "same data lands either way");
        assert!(
            overlapped.0 < serial.0,
            "overlap {} must beat serial {}",
            overlapped.0,
            serial.0
        );
    }

    #[test]
    fn async_upload_event_survives_reset() {
        let cfg = DeviceConfig::test_tiny();
        let dev = Device::new(cfg);
        let (buf, ev) = dev.upload_async(&vec![3u32; 1024]);
        dev.reset(); // what every colorer does at run start
        dev.launch("work", 64, |t| t.charge(1));
        dev.wait_event(&ev);
        assert_eq!(buf.to_vec(), vec![3u32; 1024]);
        let prof = dev.profile();
        assert_eq!(prof.memcpys, 1, "the upload bills in the reset window");
        assert_eq!(prof.memcpy_bytes, 4096);
        assert!(
            prof.h2d_overlapped_cycles > 0.0,
            "the kernel issued before the wait hides part of the copy"
        );
    }

    #[test]
    fn halo_round_counter_reaches_the_profile() {
        let dev = Device::new(DeviceConfig::test_tiny());
        dev.record_halo_round();
        dev.record_halo_round();
        dev.record_halo_round();
        assert_eq!(dev.profile().halo_rounds, 3);
        dev.reset();
        assert_eq!(dev.profile().halo_rounds, 0);
    }

    #[test]
    fn elapsed_ms_unit_conversion() {
        let dev = Device::new(DeviceConfig::test_tiny()); // 1 GHz
        dev.sync(); // 50 cycles = 50 ns
        assert!((dev.elapsed_ns() - 50.0).abs() < 1e-9);
        assert!((dev.elapsed_ms() - 50.0e-6).abs() < 1e-12);
    }
}
