//! Device configuration: the knobs of the performance model.

/// Static description of the simulated GPU.
///
/// The default, [`DeviceConfig::k40c`], approximates the NVIDIA Tesla K40c
/// used in the paper's experimental setup. Constants are derived from the
/// public datasheet (15 SMX units, 745 MHz base clock, 288 GB/s GDDR5)
/// plus conventional microbenchmark figures for launch overhead and atomic
/// throughput. The reproduction's claims are about *relative* behaviour,
/// so tests pin orderings rather than absolute values.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// SIMT width.
    pub warp_size: u32,
    /// Threads per block used when mapping a launch onto the grid.
    pub block_size: u32,
    /// Effective warps the device can retire per clock (issue throughput
    /// across all SMs). The compute-bound term divides total warp-cycles
    /// by this.
    pub warp_throughput: u32,
    /// Core clock in GHz; converts cycles to nanoseconds.
    pub clock_ghz: f64,
    /// Sustained DRAM bandwidth in bytes per core clock cycle.
    pub dram_bytes_per_cycle: f64,
    /// Bytes billed for a non-coalesced (scattered) scalar access.
    pub transaction_bytes: u64,
    /// Cycles a thread spends issuing one global memory access.
    pub mem_issue_cycles: u64,
    /// Cycles a thread spends on one atomic operation.
    pub atomic_issue_cycles: u64,
    /// Device-wide atomics retired per cycle (serialization term).
    pub atomic_throughput: f64,
    /// Fixed cycles billed per kernel launch (driver + implicit sync on
    /// the stream). ~4 µs at the K40c clock.
    pub launch_overhead_cycles: u64,
    /// Extra cycles billed by an explicit device-wide synchronization
    /// (e.g. `cudaDeviceSynchronize` between dependent operators).
    pub sync_overhead_cycles: u64,
    /// Host↔device copy: fixed latency cycles per call.
    pub memcpy_latency_cycles: u64,
    /// Host↔device copy: PCIe bandwidth in bytes per core clock cycle.
    pub pcie_bytes_per_cycle: f64,
    /// Fast-meter mode: the cost model runs in full (identical
    /// `model_ms`, thread-executions, launches, and bytes), but the
    /// device keeps no per-kernel record history and emits no telemetry
    /// spans — the configuration for million-vertex scale sweeps where
    /// the per-launch bookkeeping would dominate host time and memory.
    /// See [`DeviceConfig::fast_meter`].
    pub fast_meter: bool,
}

impl DeviceConfig {
    /// NVIDIA Tesla K40c-like configuration (the paper's GPU).
    pub fn k40c() -> Self {
        DeviceConfig {
            num_sms: 15,
            warp_size: 32,
            block_size: 256,
            // 15 SMX x 4 schedulers ~ 60 warp-instructions per clock.
            warp_throughput: 60,
            clock_ghz: 0.745,
            // 288 GB/s / 0.745 GHz ~ 386 bytes per cycle.
            dram_bytes_per_cycle: 386.0,
            transaction_bytes: 32,
            mem_issue_cycles: 4,
            atomic_issue_cycles: 24,
            atomic_throughput: 16.0,
            // ~4 us launch overhead.
            launch_overhead_cycles: 3000,
            // ~1.5 us explicit sync.
            sync_overhead_cycles: 1100,
            // ~8 us latency per cudaMemcpy plus ~10 GB/s effective PCIe 3.
            memcpy_latency_cycles: 6000,
            pcie_bytes_per_cycle: 13.4,
            fast_meter: false,
        }
    }

    /// NVIDIA Tesla V100-like configuration (what the paper's evaluation
    /// might have looked like a GPU generation later): 80 SMs at
    /// 1.38 GHz, 900 GB/s HBM2, cheaper launches and atomics. Used by
    /// the cross-device ablation to check that the reproduction's
    /// conclusions are not artifacts of the K40c constants.
    pub fn v100() -> Self {
        DeviceConfig {
            num_sms: 80,
            warp_size: 32,
            block_size: 256,
            // 80 SMs x 4 schedulers.
            warp_throughput: 320,
            clock_ghz: 1.38,
            // 900 GB/s / 1.38 GHz ~ 652 bytes per cycle.
            dram_bytes_per_cycle: 652.0,
            transaction_bytes: 32,
            mem_issue_cycles: 4,
            atomic_issue_cycles: 12,
            atomic_throughput: 64.0,
            // ~2.5 us launch overhead at the higher clock.
            launch_overhead_cycles: 3500,
            sync_overhead_cycles: 1400,
            memcpy_latency_cycles: 9000,
            // ~12 GB/s effective PCIe 3 x16.
            pcie_bytes_per_cycle: 8.7,
            fast_meter: false,
        }
    }

    /// A tiny deterministic configuration for unit tests: one warp-wide
    /// block, unit costs, 1 GHz clock so cycles == nanoseconds.
    pub fn test_tiny() -> Self {
        DeviceConfig {
            num_sms: 2,
            warp_size: 4,
            block_size: 8,
            warp_throughput: 2,
            clock_ghz: 1.0,
            dram_bytes_per_cycle: 64.0,
            transaction_bytes: 32,
            mem_issue_cycles: 4,
            atomic_issue_cycles: 24,
            atomic_throughput: 4.0,
            launch_overhead_cycles: 100,
            sync_overhead_cycles: 50,
            memcpy_latency_cycles: 200,
            pcie_bytes_per_cycle: 4.0,
            fast_meter: false,
        }
    }

    /// Turns on fast-meter mode (builder style):
    /// `DeviceConfig::k40c().fast_meter()`.
    ///
    /// A fast-meter device bills exactly the same model time, thread
    /// executions, launches, and bytes as a tracked one — the access
    /// classifier and every cost term still run — but it records no
    /// per-kernel history (`by_kernel` is empty), keeps only aggregate
    /// counters, and emits no telemetry spans even when a tracer is
    /// current. Property tests pin the bit-identity; the scale sweep
    /// (`repro scale-sweep`) runs on fast-meter devices.
    pub fn fast_meter(mut self) -> Self {
        self.fast_meter = true;
        self
    }

    /// Converts model cycles to model nanoseconds.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.clock_ghz
    }

    /// Total warp-contexts resident at once (for documentation purposes;
    /// the model uses [`Self::warp_throughput`]).
    pub fn concurrent_warps(&self) -> u32 {
        self.num_sms * 64
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::k40c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40c_constants_sane() {
        let c = DeviceConfig::k40c();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.warp_size, 32);
        assert!(c.clock_ghz > 0.5 && c.clock_ghz < 1.0);
        // 386 B/cycle * 0.745 GHz ~ 288 GB/s.
        let gbps = c.dram_bytes_per_cycle * c.clock_ghz;
        assert!((gbps - 288.0).abs() < 10.0);
    }

    #[test]
    fn cycle_conversion() {
        let c = DeviceConfig::test_tiny();
        assert_eq!(c.cycles_to_ns(1000.0), 1000.0);
        let k = DeviceConfig::k40c();
        assert!(c.cycles_to_ns(745.0) < k.cycles_to_ns(745.0));
    }

    #[test]
    fn block_size_is_warp_multiple() {
        for c in [
            DeviceConfig::k40c(),
            DeviceConfig::v100(),
            DeviceConfig::test_tiny(),
        ] {
            assert_eq!(c.block_size % c.warp_size, 0);
        }
    }

    #[test]
    fn v100_outclasses_k40c() {
        let k = DeviceConfig::k40c();
        let v = DeviceConfig::v100();
        assert!(v.num_sms > k.num_sms);
        assert!(v.clock_ghz > k.clock_ghz);
        assert!(v.dram_bytes_per_cycle > k.dram_bytes_per_cycle);
        // 652 B/cycle * 1.38 GHz ~ 900 GB/s.
        let gbps = v.dram_bytes_per_cycle * v.clock_ghz;
        assert!((gbps - 900.0).abs() < 15.0);
    }
}
