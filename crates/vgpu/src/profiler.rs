//! Kernel-level profiler: records every launch, sync, and transfer so
//! benches can explain *why* one implementation's model time differs from
//! another's (the paper's §V profiling discussion).

use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, OnceLock};

use crate::cost::KernelCost;
use crate::pool::{self, PoolStats};

/// Interns a kernel name, returning a `'static` handle. The launch hot
/// path records millions of kernels with a small, fixed vocabulary of
/// names; interning replaces a per-launch `String` allocation with one
/// hash lookup, and each distinct name is leaked exactly once.
pub fn intern_name(name: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<HashMap<&'static str, ()>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = table.lock().unwrap();
    if let Some((&interned, _)) = guard.get_key_value(name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    guard.insert(leaked, ());
    leaked
}

/// One recorded kernel launch.
#[derive(Clone, Debug)]
pub struct KernelRecord {
    /// Interned kernel name (see [`intern_name`]).
    pub name: &'static str,
    pub threads: u64,
    pub warps: u64,
    pub bytes: u64,
    pub atomics: u64,
    pub cost: KernelCost,
}

/// Aggregate per-kernel-name totals.
#[derive(Clone, Debug, Default)]
pub struct KernelSummary {
    pub launches: u64,
    /// Σ simulated thread executions across this kernel's launches.
    pub total_threads: u64,
    pub total_cycles: f64,
    pub total_bytes: u64,
    pub total_atomics: u64,
    /// The binding resource of the kernel's most expensive launch.
    pub dominant_bound: crate::cost::BoundBy,
    /// Cycles of that most expensive launch.
    pub max_launch_cycles: f64,
}

/// Which simulated copy engine an asynchronous transfer occupies: the
/// host↔device DMA engine or the device↔device peer link. Each engine
/// serializes its own transfers (back-to-back async copies queue behind
/// each other) but runs concurrently with kernel execution — that
/// concurrency is what [`Profiler::record_async_wait`] bills as overlap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopyEngine {
    /// Host↔device transfers (`upload_async`).
    H2d,
    /// Device↔device peer transfers (`peer_transfer_async`).
    D2d,
}

/// In-flight state of one launch-graph replay (see
/// [`crate::Device::replay`]): kernels recorded while this is live bill
/// their work but not their fixed launch overhead; the replay bills one
/// overhead for the whole pipeline when it closes.
#[derive(Debug, Default)]
struct GraphReplay {
    /// Kernel launches folded into this replay so far.
    kernels: u64,
    /// Widest kernel extent (threads) seen in the replay — the dynamic
    /// extent the graph resolved this round.
    max_threads: u64,
}

/// Mutable profiler state owned by a device.
#[derive(Debug)]
pub struct Profiler {
    /// Fast-meter mode: keep only the scalar aggregates below — no
    /// [`KernelRecord`] history, so `by_kernel` comes back empty and
    /// memory stays O(1) however many launches run. Every aggregate a
    /// report carries is maintained incrementally in *both* modes, so
    /// fast and tracked devices report identical numbers.
    fast: bool,
    records: Vec<KernelRecord>,
    /// Σ simulated thread executions, maintained incrementally (the
    /// tracked path could derive it from `records`; the fast path has no
    /// records to derive from).
    thread_executions: u64,
    /// Σ kernel global-memory bytes, maintained incrementally.
    kernel_bytes: u64,
    /// Σ kernel atomics, maintained incrementally.
    kernel_atomics: u64,
    /// Host-visible dispatches: ordinary launches plus one per graph
    /// replay (a replay's interior kernels are *not* separate dispatches
    /// — that is the entire point of capturing them).
    launches: u64,
    syncs: u64,
    memcpys: u64,
    memcpy_bytes: u64,
    /// Device↔device peer transfers this device took part in (as source
    /// or destination — each endpoint bills the copy on its own clock).
    d2d_transfers: u64,
    d2d_bytes: u64,
    clock_cycles: f64,
    /// Completed graph replays.
    graph_replays: u64,
    /// Kernels that executed inside a graph replay.
    graph_kernels: u64,
    /// Launch-overhead cycles actually billed to the clock.
    launch_overhead_cycles: f64,
    /// Launch-overhead cycles replays avoided: `(k - 1) x overhead` per
    /// k-kernel replay.
    launch_overhead_saved_cycles: f64,
    /// Open replay, if any (replays never nest).
    replay: Option<GraphReplay>,
    /// Buffer-pool counters at construction/reset, so the report can
    /// attribute hits/misses to this device's window.
    pool_base: PoolStats,
    /// D2D cycles hidden behind compute: for each async peer transfer,
    /// `cost - stall` at the wait point. The overlap headline of the
    /// sharded halo exchange.
    d2d_overlapped_cycles: f64,
    /// H2D cycles hidden behind compute by `upload_async`.
    h2d_overlapped_cycles: f64,
    /// D2D cycles the waiting device actually stalled for (the part of
    /// an async transfer compute did *not* cover).
    d2d_stall_cycles: f64,
    /// Halo-exchange rounds this device took part in (bumped by the
    /// sharded runner once per conflict round).
    halo_rounds: u64,
    /// Absolute model clock: every cycle ever billed on this device,
    /// **surviving [`Profiler::reset`]**. Async transfer completions are
    /// timestamped on this axis so an event issued before a colorer's
    /// run-start reset stays meaningful when awaited after it.
    abs_cycles: f64,
    /// Absolute time the H2D copy engine becomes free (never reset).
    h2d_free_abs: f64,
    /// Absolute time the D2D peer link becomes free (never reset).
    d2d_free_abs: f64,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new(false)
    }
}

impl Profiler {
    /// A profiler in tracked (`fast == false`) or fast-meter mode.
    pub fn new(fast: bool) -> Self {
        Profiler {
            fast,
            records: Vec::new(),
            thread_executions: 0,
            kernel_bytes: 0,
            kernel_atomics: 0,
            launches: 0,
            syncs: 0,
            memcpys: 0,
            memcpy_bytes: 0,
            d2d_transfers: 0,
            d2d_bytes: 0,
            clock_cycles: 0.0,
            graph_replays: 0,
            graph_kernels: 0,
            launch_overhead_cycles: 0.0,
            launch_overhead_saved_cycles: 0.0,
            replay: None,
            pool_base: pool::stats(),
            d2d_overlapped_cycles: 0.0,
            h2d_overlapped_cycles: 0.0,
            d2d_stall_cycles: 0.0,
            halo_rounds: 0,
            abs_cycles: 0.0,
            h2d_free_abs: 0.0,
            d2d_free_abs: 0.0,
        }
    }
}

impl Profiler {
    pub fn record_kernel(&mut self, mut rec: KernelRecord) {
        if let Some(g) = &mut self.replay {
            // Inside a replay the kernel's work is billed in full but its
            // fixed launch overhead is not: the graph dispatch pays one
            // overhead for the whole pipeline at `end_replay`.
            let overhead = rec.cost.launch_overhead;
            rec.cost.total_cycles -= overhead;
            rec.cost.launch_overhead = 0.0;
            g.kernels += 1;
            g.max_threads = g.max_threads.max(rec.threads);
            self.graph_kernels += 1;
            self.launch_overhead_saved_cycles += overhead;
        } else {
            self.launches += 1;
            self.launch_overhead_cycles += rec.cost.launch_overhead;
        }
        self.clock_cycles += rec.cost.total_cycles;
        self.abs_cycles += rec.cost.total_cycles;
        self.thread_executions += rec.threads;
        self.kernel_bytes += rec.bytes;
        self.kernel_atomics += rec.atomics;
        if !self.fast {
            self.records.push(rec);
        }
    }

    /// Opens a graph replay; kernels recorded until [`Profiler::end_replay`]
    /// bill work without per-launch overhead. Replays cannot nest.
    pub fn begin_replay(&mut self) {
        assert!(
            self.replay.is_none(),
            "launch-graph replays cannot nest: a replay is already open on this device"
        );
        self.replay = Some(GraphReplay::default());
    }

    /// Closes the open replay, billing `overhead_cycles` once for the
    /// whole pipeline. Returns `(kernels, max extent)` of the replay.
    pub fn end_replay(&mut self, overhead_cycles: f64) -> (u64, u64) {
        let g = self
            .replay
            .take()
            .expect("end_replay without a matching begin_replay");
        self.launches += 1;
        self.graph_replays += 1;
        self.clock_cycles += overhead_cycles;
        self.abs_cycles += overhead_cycles;
        self.launch_overhead_cycles += overhead_cycles;
        if g.kernels > 0 {
            // Net saving of a k-kernel replay is (k - 1) x overhead: the
            // per-kernel credits above minus the one dispatch billed here.
            self.launch_overhead_saved_cycles -= overhead_cycles;
        }
        (g.kernels, g.max_threads)
    }

    pub fn record_sync(&mut self, cycles: f64) {
        self.syncs += 1;
        self.clock_cycles += cycles;
        self.abs_cycles += cycles;
    }

    pub fn record_memcpy(&mut self, bytes: u64, cycles: f64) {
        self.memcpys += 1;
        self.memcpy_bytes += bytes;
        self.clock_cycles += cycles;
        self.abs_cycles += cycles;
    }

    /// One endpoint's share of a device↔device peer copy. Both the source
    /// and the destination device record the transfer, each billing the
    /// copy's cycles on its own clock (a peer copy occupies both ends of
    /// the link for its duration).
    pub fn record_d2d(&mut self, bytes: u64, cycles: f64) {
        self.d2d_transfers += 1;
        self.d2d_bytes += bytes;
        self.clock_cycles += cycles;
        self.abs_cycles += cycles;
    }

    pub fn clock_cycles(&self) -> f64 {
        self.clock_cycles
    }

    /// Absolute model clock: cycles billed since *construction*,
    /// surviving [`Profiler::reset`]. Async transfer completions live on
    /// this axis.
    pub fn abs_cycles(&self) -> f64 {
        self.abs_cycles
    }

    /// Absolute time `engine` becomes free for a new transfer.
    pub fn engine_free_abs(&self, engine: CopyEngine) -> f64 {
        match engine {
            CopyEngine::H2d => self.h2d_free_abs,
            CopyEngine::D2d => self.d2d_free_abs,
        }
    }

    /// Marks `engine` busy until the absolute time `until`. Engines only
    /// move forward: an earlier `until` than the current horizon is a
    /// no-op.
    pub fn occupy_engine(&mut self, engine: CopyEngine, until: f64) {
        let slot = match engine {
            CopyEngine::H2d => &mut self.h2d_free_abs,
            CopyEngine::D2d => &mut self.d2d_free_abs,
        };
        *slot = slot.max(until);
    }

    /// Counts one async peer transfer at *issue* time: the transfer and
    /// its bytes are visible in the report immediately, but no cycles are
    /// billed — the wait point decides how much of the copy's cost the
    /// compute in between actually hid.
    pub fn record_d2d_issue(&mut self, bytes: u64) {
        self.d2d_transfers += 1;
        self.d2d_bytes += bytes;
    }

    /// Bills the wait point of an asynchronous transfer: the device
    /// stalls for whatever part of the copy its compute since issue did
    /// not cover (`completion_abs` vs. the current absolute clock), and
    /// the covered remainder is credited to the engine's overlapped
    /// counter. This is exactly `max(compute, transfer)` accounting — the
    /// synchronous path's serial `compute + transfer` sum minus the
    /// overlap. H2D waits also count the memcpy itself here (not at
    /// issue), so an upload issued before a colorer's run-start reset
    /// still shows up in the window the report covers.
    pub fn record_async_wait(
        &mut self,
        engine: CopyEngine,
        bytes: u64,
        cost_cycles: f64,
        completion_abs: f64,
    ) {
        let stall = (completion_abs - self.abs_cycles).max(0.0);
        let overlapped = (cost_cycles - stall).max(0.0);
        self.clock_cycles += stall;
        self.abs_cycles += stall;
        match engine {
            CopyEngine::H2d => {
                self.memcpys += 1;
                self.memcpy_bytes += bytes;
                self.h2d_overlapped_cycles += overlapped;
            }
            CopyEngine::D2d => {
                self.d2d_overlapped_cycles += overlapped;
                self.d2d_stall_cycles += stall;
            }
        }
    }

    /// Counts one halo-exchange round (the sharded runner's per-round
    /// telemetry hook).
    pub fn record_halo_round(&mut self) {
        self.halo_rounds += 1;
    }

    pub fn reset(&mut self) {
        let (abs, h2d_free, d2d_free) = (self.abs_cycles, self.h2d_free_abs, self.d2d_free_abs);
        *self = Profiler::new(self.fast);
        self.abs_cycles = abs;
        self.h2d_free_abs = h2d_free;
        self.d2d_free_abs = d2d_free;
    }

    pub fn report(&self) -> ProfileReport {
        let mut by_kernel: BTreeMap<String, KernelSummary> = BTreeMap::new();
        for r in &self.records {
            let e = by_kernel.entry(r.name.to_string()).or_default();
            e.launches += 1;
            e.total_threads += r.threads;
            e.total_cycles += r.cost.total_cycles;
            e.total_bytes += r.bytes;
            e.total_atomics += r.atomics;
            if r.cost.total_cycles > e.max_launch_cycles {
                e.max_launch_cycles = r.cost.total_cycles;
                e.dominant_bound = r.cost.bound_by();
            }
        }
        let pool_now = pool::stats();
        ProfileReport {
            launches: self.launches,
            thread_executions: self.thread_executions,
            kernel_bytes: self.kernel_bytes,
            kernel_atomics: self.kernel_atomics,
            syncs: self.syncs,
            memcpys: self.memcpys,
            memcpy_bytes: self.memcpy_bytes,
            d2d_transfers: self.d2d_transfers,
            d2d_bytes: self.d2d_bytes,
            clock_cycles: self.clock_cycles,
            graph_replays: self.graph_replays,
            graph_kernels: self.graph_kernels,
            launch_overhead_cycles: self.launch_overhead_cycles,
            launch_overhead_saved_cycles: self.launch_overhead_saved_cycles,
            launch_overhead_ms: 0.0,
            d2d_overlapped_cycles: self.d2d_overlapped_cycles,
            h2d_overlapped_cycles: self.h2d_overlapped_cycles,
            d2d_stall_cycles: self.d2d_stall_cycles,
            halo_rounds: self.halo_rounds,
            pool_hits: pool_now.hits - self.pool_base.hits,
            pool_misses: pool_now.misses - self.pool_base.misses,
            by_kernel,
        }
    }

    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }
}

/// Immutable profiling snapshot.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Host-visible dispatches: ordinary launches plus one per graph
    /// replay. Kernels folded into a replay are counted under
    /// [`ProfileReport::graph_kernels`], not here.
    pub launches: u64,
    /// Σ simulated thread executions over every recorded launch — the
    /// work-efficiency metric frontier compaction is judged by.
    pub thread_executions: u64,
    /// Σ kernel global-memory bytes over every launch. Maintained
    /// incrementally so fast-meter reports carry it even with
    /// [`ProfileReport::by_kernel`] empty.
    pub kernel_bytes: u64,
    /// Σ kernel atomic operations over every launch (incremental, like
    /// [`ProfileReport::kernel_bytes`]).
    pub kernel_atomics: u64,
    pub syncs: u64,
    pub memcpys: u64,
    pub memcpy_bytes: u64,
    /// Device↔device peer copies this device took part in, as source or
    /// destination. The sharded runner's halo exchange is metered here,
    /// separately from host↔device traffic.
    pub d2d_transfers: u64,
    pub d2d_bytes: u64,
    pub clock_cycles: f64,
    /// Completed [`crate::LaunchGraph`] replays.
    pub graph_replays: u64,
    /// Kernels executed inside graph replays (each billed its work but
    /// no per-launch overhead).
    pub graph_kernels: u64,
    /// Launch-overhead cycles actually billed to the model clock.
    pub launch_overhead_cycles: f64,
    /// Launch-overhead cycles avoided by replays (`(k-1) x overhead` per
    /// k-kernel replay).
    pub launch_overhead_saved_cycles: f64,
    /// [`ProfileReport::launch_overhead_cycles`] on the device's clock,
    /// in milliseconds. Filled by [`crate::Device::profile`] (the raw
    /// report from a bare [`Profiler`] has no clock rate and leaves 0).
    pub launch_overhead_ms: f64,
    /// Async peer-transfer cycles hidden behind compute (the copy cost
    /// minus the stall billed at the wait point, summed over waits). The
    /// sharded runner's overlap headline: `overlap_ratio` is this over
    /// the total D2D copy cost.
    pub d2d_overlapped_cycles: f64,
    /// Async host↔device upload cycles hidden behind compute.
    pub h2d_overlapped_cycles: f64,
    /// Async peer-transfer cycles the device actually stalled for at
    /// wait points (the un-hidden remainder).
    pub d2d_stall_cycles: f64,
    /// Halo-exchange rounds this device took part in.
    pub halo_rounds: u64,
    /// Buffer-pool allocations served from a shelf during this device's
    /// profiling window (all threads; see [`crate::pool`]).
    pub pool_hits: u64,
    /// Pool-enabled allocations that fell through to the allocator
    /// during this window.
    pub pool_misses: u64,
    pub by_kernel: BTreeMap<String, KernelSummary>,
}

impl ProfileReport {
    /// Machine-readable CSV: one header row, one row per kernel, and a
    /// final `_total` row carrying the launch/sync/transfer aggregates.
    /// Shares its column vocabulary with [`ProfileReport::to_kv`] so the
    /// bench harness and the serving layer emit one format.
    ///
    /// Kernel global-memory traffic and host↔device transfer traffic are
    /// different quantities, so they get distinct columns: kernel rows
    /// fill `kernel_bytes` (their global-memory bytes) and report 0
    /// under `memcpy_bytes` (transfers are never attributed to a
    /// kernel); the `_total` row carries both sums.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "kernel,launches,total_cycles,kernel_bytes,memcpy_bytes,total_atomics,dominant_bound\n",
        );
        for (name, s) in &self.by_kernel {
            out.push_str(&format!(
                "{},{},{:.0},{},0,{},{}\n",
                name, s.launches, s.total_cycles, s.total_bytes, s.total_atomics, s.dominant_bound
            ));
        }
        // The incremental sums, not a fold over by_kernel: a fast-meter
        // report has no kernel rows but still carries exact totals.
        out.push_str(&format!(
            "_total,{},{:.0},{},{},{},-\n",
            self.launches,
            self.clock_cycles,
            self.kernel_bytes,
            self.memcpy_bytes,
            self.kernel_atomics
        ));
        out
    }

    /// Line-delimited `key=value` dump: the report's scalar aggregates
    /// followed by per-kernel entries under `kernel.<name>.<field>` keys.
    pub fn to_kv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("launches={}\n", self.launches));
        out.push_str(&format!("thread_executions={}\n", self.thread_executions));
        out.push_str(&format!("kernel_bytes={}\n", self.kernel_bytes));
        out.push_str(&format!("kernel_atomics={}\n", self.kernel_atomics));
        out.push_str(&format!("syncs={}\n", self.syncs));
        out.push_str(&format!("memcpys={}\n", self.memcpys));
        out.push_str(&format!("memcpy_bytes={}\n", self.memcpy_bytes));
        out.push_str(&format!("d2d_transfers={}\n", self.d2d_transfers));
        out.push_str(&format!("d2d_bytes={}\n", self.d2d_bytes));
        out.push_str(&format!("model_cycles={:.0}\n", self.clock_cycles));
        out.push_str(&format!("graph_replays={}\n", self.graph_replays));
        out.push_str(&format!("graph_kernels={}\n", self.graph_kernels));
        out.push_str(&format!(
            "launch_overhead_cycles={:.0}\n",
            self.launch_overhead_cycles
        ));
        out.push_str(&format!(
            "launch_overhead_saved_cycles={:.0}\n",
            self.launch_overhead_saved_cycles
        ));
        out.push_str(&format!(
            "d2d_overlapped_cycles={:.0}\n",
            self.d2d_overlapped_cycles
        ));
        out.push_str(&format!(
            "h2d_overlapped_cycles={:.0}\n",
            self.h2d_overlapped_cycles
        ));
        out.push_str(&format!("d2d_stall_cycles={:.0}\n", self.d2d_stall_cycles));
        out.push_str(&format!("halo_rounds={}\n", self.halo_rounds));
        out.push_str(&format!("pool_hits={}\n", self.pool_hits));
        out.push_str(&format!("pool_misses={}\n", self.pool_misses));
        for (name, s) in &self.by_kernel {
            let key = name.replace([' ', '='], "_");
            out.push_str(&format!("kernel.{key}.launches={}\n", s.launches));
            out.push_str(&format!(
                "kernel.{key}.total_cycles={:.0}\n",
                s.total_cycles
            ));
            out.push_str(&format!("kernel.{key}.total_bytes={}\n", s.total_bytes));
            out.push_str(&format!("kernel.{key}.total_atomics={}\n", s.total_atomics));
            out.push_str(&format!(
                "kernel.{key}.dominant_bound={}\n",
                s.dominant_bound
            ));
        }
        out
    }

    /// Fraction of total model time spent in kernels whose name contains
    /// `pat`. This is how the reproduction checks statements like "a
    /// second call to `GrB_vxm` ends up taking nearly 50% of the runtime".
    pub fn time_fraction(&self, pat: &str) -> f64 {
        if self.clock_cycles == 0.0 {
            return 0.0;
        }
        let t: f64 = self
            .by_kernel
            .iter()
            .filter(|(name, _)| name.contains(pat))
            .map(|(_, s)| s.total_cycles)
            .sum();
        t / self.clock_cycles
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "launches={} graph_replays={} syncs={} memcpys={} ({} B) d2d={} ({} B) model_cycles={:.0}",
            self.launches,
            self.graph_replays,
            self.syncs,
            self.memcpys,
            self.memcpy_bytes,
            self.d2d_transfers,
            self.d2d_bytes,
            self.clock_cycles
        )?;
        for (name, s) in &self.by_kernel {
            writeln!(
                f,
                "  {name:<32} x{:<6} {:>14.0} cyc {:>12} B {:>8} atomics  [{}]",
                s.launches, s.total_cycles, s.total_bytes, s.total_atomics, s.dominant_bound
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelCost;

    fn rec(name: &'static str, cycles: f64) -> KernelRecord {
        KernelRecord {
            name,
            threads: 10,
            warps: 1,
            bytes: 100,
            atomics: 2,
            cost: KernelCost {
                total_cycles: cycles,
                ..Default::default()
            },
        }
    }

    #[test]
    fn clock_advances_with_records() {
        let mut p = Profiler::default();
        p.record_kernel(rec("a", 100.0));
        p.record_sync(50.0);
        p.record_memcpy(64, 25.0);
        assert_eq!(p.clock_cycles(), 175.0);
    }

    #[test]
    fn intern_returns_one_handle_per_name() {
        let a = intern_name("some::kernel");
        let b = intern_name("some::kernel");
        let c = intern_name("some::other");
        assert!(std::ptr::eq(a, b), "same name must intern to one handle");
        assert_eq!(a, "some::kernel");
        assert_eq!(c, "some::other");
    }

    #[test]
    fn report_sums_thread_executions() {
        let mut p = Profiler::default();
        p.record_kernel(rec("a", 10.0)); // 10 threads each
        p.record_kernel(rec("a", 10.0));
        p.record_kernel(rec("b", 10.0));
        let r = p.report();
        assert_eq!(r.thread_executions, 30);
        assert_eq!(r.by_kernel["a"].total_threads, 20);
        assert_eq!(r.by_kernel["b"].total_threads, 10);
    }

    #[test]
    fn report_groups_by_name() {
        let mut p = Profiler::default();
        p.record_kernel(rec("color", 100.0));
        p.record_kernel(rec("color", 60.0));
        p.record_kernel(rec("check", 40.0));
        let r = p.report();
        assert_eq!(r.launches, 3);
        assert_eq!(r.by_kernel["color"].launches, 2);
        assert_eq!(r.by_kernel["color"].total_cycles, 160.0);
        assert_eq!(r.by_kernel["check"].total_cycles, 40.0);
    }

    #[test]
    fn time_fraction() {
        let mut p = Profiler::default();
        p.record_kernel(rec("vxm_pass1", 75.0));
        p.record_kernel(rec("assign", 25.0));
        let r = p.report();
        assert_eq!(r.time_fraction("vxm"), 0.75);
        assert_eq!(r.time_fraction("nonexistent"), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = Profiler::default();
        p.record_kernel(rec("a", 10.0));
        p.reset();
        assert_eq!(p.clock_cycles(), 0.0);
        assert!(p.records().is_empty());
    }

    #[test]
    fn display_renders() {
        let mut p = Profiler::default();
        p.record_kernel(rec("k", 10.0));
        let s = p.report().to_string();
        assert!(s.contains("k"));
        assert!(s.contains("launches=1"));
    }

    #[test]
    fn csv_has_header_kernel_rows_and_total() {
        let mut p = Profiler::default();
        p.record_kernel(rec("color", 100.0));
        p.record_kernel(rec("color", 60.0));
        p.record_kernel(rec("check", 40.0));
        p.record_memcpy(64, 25.0);
        let csv = p.report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "kernel,launches,total_cycles,kernel_bytes,memcpy_bytes,total_atomics,dominant_bound"
        );
        // BTreeMap ordering: "check" before "color", then the total row.
        // Kernel rows: own bytes under kernel_bytes, 0 under memcpy_bytes.
        assert!(lines[1].starts_with("check,1,40,100,0,"));
        assert!(lines[2].starts_with("color,2,160,200,0,"));
        // _total: kernel-byte sum and memcpy-byte sum in distinct columns.
        assert!(lines[3].starts_with("_total,3,225,300,64,6,"));
        assert_eq!(lines.len(), 4);
        // Every row has the same column count as the header.
        for l in &lines {
            assert_eq!(l.split(',').count(), 7, "bad row: {l}");
        }
    }

    #[test]
    fn kv_dump_is_line_delimited_pairs() {
        let mut p = Profiler::default();
        p.record_kernel(rec("vxm pass", 75.0));
        p.record_sync(5.0);
        let kv = p.report().to_kv();
        assert!(kv.contains("launches=1\n"));
        assert!(kv.contains("syncs=1\n"));
        assert!(kv.contains("model_cycles=80\n"));
        // Kernel names are sanitized so keys stay parseable.
        assert!(kv.contains("kernel.vxm_pass.total_cycles=75\n"));
        for line in kv.lines() {
            assert_eq!(line.split('=').count(), 2, "bad kv line: {line}");
        }
    }

    fn rec_with_overhead(name: &'static str, overhead: f64, work: f64) -> KernelRecord {
        KernelRecord {
            name,
            threads: 10,
            warps: 1,
            bytes: 100,
            atomics: 2,
            cost: KernelCost {
                launch_overhead: overhead,
                compute_term: work,
                total_cycles: overhead + work,
                ..Default::default()
            },
        }
    }

    #[test]
    fn replay_bills_one_overhead_for_the_pipeline() {
        let mut p = Profiler::default();
        p.begin_replay();
        p.record_kernel(rec_with_overhead("a", 100.0, 40.0));
        p.record_kernel(rec_with_overhead("b", 100.0, 60.0));
        p.record_kernel(rec_with_overhead("c", 100.0, 10.0));
        let (kernels, extent) = p.end_replay(100.0);
        assert_eq!(kernels, 3);
        assert_eq!(extent, 10);
        // Work in full, overhead once: 40 + 60 + 10 + 100.
        assert_eq!(p.clock_cycles(), 210.0);
        let r = p.report();
        assert_eq!(r.launches, 1, "the replay is one dispatch");
        assert_eq!(r.graph_replays, 1);
        assert_eq!(r.graph_kernels, 3);
        assert_eq!(r.launch_overhead_cycles, 100.0);
        assert_eq!(r.launch_overhead_saved_cycles, 200.0, "(k-1) x overhead");
        // Per-kernel grouping still sees every kernel.
        assert_eq!(r.by_kernel.len(), 3);
        assert_eq!(r.thread_executions, 30);
    }

    #[test]
    fn replay_of_one_kernel_saves_nothing() {
        let mut p = Profiler::default();
        p.begin_replay();
        p.record_kernel(rec_with_overhead("a", 100.0, 40.0));
        p.end_replay(100.0);
        assert_eq!(p.clock_cycles(), 140.0);
        assert_eq!(p.report().launch_overhead_saved_cycles, 0.0);
    }

    #[test]
    fn empty_replay_costs_one_overhead() {
        let mut p = Profiler::default();
        p.begin_replay();
        let (kernels, extent) = p.end_replay(100.0);
        assert_eq!((kernels, extent), (0, 0));
        assert_eq!(p.clock_cycles(), 100.0);
        let r = p.report();
        assert_eq!(r.launches, 1);
        assert_eq!(r.launch_overhead_saved_cycles, 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot nest")]
    fn nested_replays_panic() {
        let mut p = Profiler::default();
        p.begin_replay();
        p.begin_replay();
    }

    #[test]
    fn kv_dump_carries_replay_and_pool_counters() {
        let mut p = Profiler::default();
        p.begin_replay();
        p.record_kernel(rec_with_overhead("a", 100.0, 40.0));
        p.record_kernel(rec_with_overhead("b", 100.0, 60.0));
        p.end_replay(100.0);
        let kv = p.report().to_kv();
        assert!(kv.contains("graph_replays=1\n"));
        assert!(kv.contains("graph_kernels=2\n"));
        assert!(kv.contains("launch_overhead_cycles=100\n"));
        assert!(kv.contains("launch_overhead_saved_cycles=100\n"));
        assert!(kv.contains("pool_hits="));
        assert!(kv.contains("pool_misses="));
        for line in kv.lines() {
            assert_eq!(line.split('=').count(), 2, "bad kv line: {line}");
        }
    }

    #[test]
    fn d2d_transfers_bill_and_report_separately_from_memcpys() {
        let mut p = Profiler::default();
        p.record_memcpy(64, 25.0);
        p.record_d2d(128, 40.0);
        p.record_d2d(128, 40.0);
        assert_eq!(p.clock_cycles(), 105.0);
        let r = p.report();
        assert_eq!(r.memcpys, 1);
        assert_eq!(r.memcpy_bytes, 64);
        assert_eq!(r.d2d_transfers, 2);
        assert_eq!(r.d2d_bytes, 256);
        let kv = r.to_kv();
        assert!(kv.contains("d2d_transfers=2\n"));
        assert!(kv.contains("d2d_bytes=256\n"));
        assert!(r.to_string().contains("d2d=2 (256 B)"));
    }

    #[test]
    fn fast_profiler_keeps_aggregates_without_records() {
        let mut tracked = Profiler::default();
        let mut fast = Profiler::new(true);
        for p in [&mut tracked, &mut fast] {
            p.record_kernel(rec("a", 100.0));
            p.record_kernel(rec("b", 60.0));
            p.record_sync(5.0);
            p.record_memcpy(64, 25.0);
        }
        assert_eq!(tracked.clock_cycles(), fast.clock_cycles());
        let (rt, rf) = (tracked.report(), fast.report());
        assert_eq!(rt.launches, rf.launches);
        assert_eq!(rt.thread_executions, rf.thread_executions);
        assert_eq!(rt.kernel_bytes, rf.kernel_bytes);
        assert_eq!(rt.kernel_atomics, rf.kernel_atomics);
        assert!(fast.records().is_empty());
        assert!(rf.by_kernel.is_empty());
        // The CSV _total row matches exactly despite the missing kernel
        // rows, and tracked's incremental totals agree with its rows.
        assert_eq!(rt.to_csv().lines().last(), rf.to_csv().lines().last());
        assert_eq!(
            rt.kernel_bytes,
            rt.by_kernel.values().map(|s| s.total_bytes).sum::<u64>()
        );
    }

    #[test]
    fn reset_preserves_fast_mode() {
        let mut p = Profiler::new(true);
        p.record_kernel(rec("a", 10.0));
        p.reset();
        assert_eq!(p.clock_cycles(), 0.0);
        p.record_kernel(rec("a", 10.0));
        assert!(p.records().is_empty(), "fast mode must survive reset");
    }

    #[test]
    fn abs_clock_survives_reset_while_window_clock_does_not() {
        let mut p = Profiler::default();
        p.record_kernel(rec("a", 100.0));
        p.record_sync(50.0);
        assert_eq!(p.abs_cycles(), 150.0);
        p.reset();
        assert_eq!(p.clock_cycles(), 0.0);
        assert_eq!(p.abs_cycles(), 150.0, "absolute axis must survive reset");
        p.record_kernel(rec("b", 25.0));
        assert_eq!(p.clock_cycles(), 25.0);
        assert_eq!(p.abs_cycles(), 175.0);
    }

    #[test]
    fn async_wait_bills_max_of_compute_and_transfer() {
        // Issue a 100-cycle peer copy at t=0, compute 60 cycles, wait:
        // the stall is the uncovered 40 and the overlap is the hidden 60.
        let mut p = Profiler::default();
        let cost = 100.0;
        let start = p.abs_cycles().max(p.engine_free_abs(CopyEngine::D2d));
        let completion = start + cost;
        p.occupy_engine(CopyEngine::D2d, completion);
        p.record_d2d_issue(400);
        p.record_kernel(rec("compute", 60.0));
        p.record_async_wait(CopyEngine::D2d, 400, cost, completion);
        assert_eq!(p.clock_cycles(), 100.0, "total = max(compute, transfer)");
        let r = p.report();
        assert_eq!(r.d2d_transfers, 1);
        assert_eq!(r.d2d_bytes, 400);
        assert_eq!(r.d2d_overlapped_cycles, 60.0);
        assert_eq!(r.d2d_stall_cycles, 40.0);
    }

    #[test]
    fn async_wait_after_transfer_already_done_stalls_zero() {
        let mut p = Profiler::default();
        let completion = p.abs_cycles() + 30.0;
        p.occupy_engine(CopyEngine::D2d, completion);
        p.record_d2d_issue(8);
        p.record_kernel(rec("compute", 500.0));
        p.record_async_wait(CopyEngine::D2d, 8, 30.0, completion);
        assert_eq!(p.clock_cycles(), 500.0, "fully hidden transfer is free");
        assert_eq!(p.report().d2d_overlapped_cycles, 30.0);
        assert_eq!(p.report().d2d_stall_cycles, 0.0);
    }

    #[test]
    fn copy_engines_serialize_back_to_back_transfers() {
        let mut p = Profiler::default();
        // Two 50-cycle copies issued at t=0 queue on the engine: the
        // second starts when the first ends.
        let s1 = p.abs_cycles().max(p.engine_free_abs(CopyEngine::D2d));
        p.occupy_engine(CopyEngine::D2d, s1 + 50.0);
        let s2 = p.abs_cycles().max(p.engine_free_abs(CopyEngine::D2d));
        assert_eq!(s2, 50.0, "second copy queues behind the first");
        p.occupy_engine(CopyEngine::D2d, s2 + 50.0);
        assert_eq!(p.engine_free_abs(CopyEngine::D2d), 100.0);
        // Engines never move backwards.
        p.occupy_engine(CopyEngine::D2d, 10.0);
        assert_eq!(p.engine_free_abs(CopyEngine::D2d), 100.0);
    }

    #[test]
    fn h2d_wait_counts_the_memcpy_even_across_a_reset() {
        // An async upload issued before a colorer's run-start reset must
        // still be visible in the post-reset window: the memcpy counters
        // bill at the wait point, and the completion timestamp lives on
        // the absolute axis.
        let mut p = Profiler::default();
        p.record_kernel(rec("pre", 20.0));
        let start = p.abs_cycles().max(p.engine_free_abs(CopyEngine::H2d));
        let completion = start + 100.0;
        p.occupy_engine(CopyEngine::H2d, completion);
        p.reset();
        p.record_kernel(rec("post", 30.0)); // abs now 50
        p.record_async_wait(CopyEngine::H2d, 64, 100.0, completion);
        // Completion at abs=120, abs was 50 at the wait: 70 stall.
        assert_eq!(p.clock_cycles(), 100.0);
        let r = p.report();
        assert_eq!(r.memcpys, 1);
        assert_eq!(r.memcpy_bytes, 64);
        assert_eq!(r.h2d_overlapped_cycles, 30.0);
    }

    #[test]
    fn halo_rounds_and_overlap_counters_reach_the_kv_dump() {
        let mut p = Profiler::default();
        p.record_halo_round();
        p.record_halo_round();
        let completion = 40.0;
        p.occupy_engine(CopyEngine::D2d, completion);
        p.record_d2d_issue(16);
        p.record_async_wait(CopyEngine::D2d, 16, 40.0, completion);
        let r = p.report();
        assert_eq!(r.halo_rounds, 2);
        let kv = r.to_kv();
        assert!(kv.contains("halo_rounds=2\n"));
        assert!(kv.contains("d2d_overlapped_cycles=0\n"));
        assert!(kv.contains("d2d_stall_cycles=40\n"));
        assert!(kv.contains("h2d_overlapped_cycles=0\n"));
        for line in kv.lines() {
            assert_eq!(line.split('=').count(), 2, "bad kv line: {line}");
        }
    }

    #[test]
    fn empty_report_exports_cleanly() {
        let p = Profiler::default();
        let csv = p.report().to_csv();
        assert_eq!(csv.lines().count(), 2); // header + _total
        let kv = p.report().to_kv();
        assert!(kv.contains("launches=0\n"));
        assert!(kv.contains("model_cycles=0\n"));
    }
}
