//! Kernel-level profiler: records every launch, sync, and transfer so
//! benches can explain *why* one implementation's model time differs from
//! another's (the paper's §V profiling discussion).

use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, OnceLock};

use crate::cost::KernelCost;

/// Interns a kernel name, returning a `'static` handle. The launch hot
/// path records millions of kernels with a small, fixed vocabulary of
/// names; interning replaces a per-launch `String` allocation with one
/// hash lookup, and each distinct name is leaked exactly once.
pub fn intern_name(name: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<HashMap<&'static str, ()>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = table.lock().unwrap();
    if let Some((&interned, _)) = guard.get_key_value(name) {
        return interned;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    guard.insert(leaked, ());
    leaked
}

/// One recorded kernel launch.
#[derive(Clone, Debug)]
pub struct KernelRecord {
    /// Interned kernel name (see [`intern_name`]).
    pub name: &'static str,
    pub threads: u64,
    pub warps: u64,
    pub bytes: u64,
    pub atomics: u64,
    pub cost: KernelCost,
}

/// Aggregate per-kernel-name totals.
#[derive(Clone, Debug, Default)]
pub struct KernelSummary {
    pub launches: u64,
    /// Σ simulated thread executions across this kernel's launches.
    pub total_threads: u64,
    pub total_cycles: f64,
    pub total_bytes: u64,
    pub total_atomics: u64,
    /// The binding resource of the kernel's most expensive launch.
    pub dominant_bound: crate::cost::BoundBy,
    /// Cycles of that most expensive launch.
    pub max_launch_cycles: f64,
}

/// Mutable profiler state owned by a device.
#[derive(Debug, Default)]
pub struct Profiler {
    records: Vec<KernelRecord>,
    syncs: u64,
    memcpys: u64,
    memcpy_bytes: u64,
    clock_cycles: f64,
}

impl Profiler {
    pub fn record_kernel(&mut self, rec: KernelRecord) {
        self.clock_cycles += rec.cost.total_cycles;
        self.records.push(rec);
    }

    pub fn record_sync(&mut self, cycles: f64) {
        self.syncs += 1;
        self.clock_cycles += cycles;
    }

    pub fn record_memcpy(&mut self, bytes: u64, cycles: f64) {
        self.memcpys += 1;
        self.memcpy_bytes += bytes;
        self.clock_cycles += cycles;
    }

    pub fn clock_cycles(&self) -> f64 {
        self.clock_cycles
    }

    pub fn reset(&mut self) {
        *self = Profiler::default();
    }

    pub fn report(&self) -> ProfileReport {
        let mut by_kernel: BTreeMap<String, KernelSummary> = BTreeMap::new();
        let mut thread_executions = 0u64;
        for r in &self.records {
            let e = by_kernel.entry(r.name.to_string()).or_default();
            e.launches += 1;
            e.total_threads += r.threads;
            e.total_cycles += r.cost.total_cycles;
            e.total_bytes += r.bytes;
            e.total_atomics += r.atomics;
            if r.cost.total_cycles > e.max_launch_cycles {
                e.max_launch_cycles = r.cost.total_cycles;
                e.dominant_bound = r.cost.bound_by();
            }
            thread_executions += r.threads;
        }
        ProfileReport {
            launches: self.records.len() as u64,
            thread_executions,
            syncs: self.syncs,
            memcpys: self.memcpys,
            memcpy_bytes: self.memcpy_bytes,
            clock_cycles: self.clock_cycles,
            by_kernel,
        }
    }

    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }
}

/// Immutable profiling snapshot.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    pub launches: u64,
    /// Σ simulated thread executions over every recorded launch — the
    /// work-efficiency metric frontier compaction is judged by.
    pub thread_executions: u64,
    pub syncs: u64,
    pub memcpys: u64,
    pub memcpy_bytes: u64,
    pub clock_cycles: f64,
    pub by_kernel: BTreeMap<String, KernelSummary>,
}

impl ProfileReport {
    /// Machine-readable CSV: one header row, one row per kernel, and a
    /// final `_total` row carrying the launch/sync/transfer aggregates.
    /// Shares its column vocabulary with [`ProfileReport::to_kv`] so the
    /// bench harness and the serving layer emit one format.
    ///
    /// Kernel global-memory traffic and host↔device transfer traffic are
    /// different quantities, so they get distinct columns: kernel rows
    /// fill `kernel_bytes` (their global-memory bytes) and report 0
    /// under `memcpy_bytes` (transfers are never attributed to a
    /// kernel); the `_total` row carries both sums.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "kernel,launches,total_cycles,kernel_bytes,memcpy_bytes,total_atomics,dominant_bound\n",
        );
        for (name, s) in &self.by_kernel {
            out.push_str(&format!(
                "{},{},{:.0},{},0,{},{}\n",
                name, s.launches, s.total_cycles, s.total_bytes, s.total_atomics, s.dominant_bound
            ));
        }
        let atomics: u64 = self.by_kernel.values().map(|s| s.total_atomics).sum();
        let kernel_bytes: u64 = self.by_kernel.values().map(|s| s.total_bytes).sum();
        out.push_str(&format!(
            "_total,{},{:.0},{},{},{},-\n",
            self.launches, self.clock_cycles, kernel_bytes, self.memcpy_bytes, atomics
        ));
        out
    }

    /// Line-delimited `key=value` dump: the report's scalar aggregates
    /// followed by per-kernel entries under `kernel.<name>.<field>` keys.
    pub fn to_kv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("launches={}\n", self.launches));
        out.push_str(&format!("thread_executions={}\n", self.thread_executions));
        out.push_str(&format!("syncs={}\n", self.syncs));
        out.push_str(&format!("memcpys={}\n", self.memcpys));
        out.push_str(&format!("memcpy_bytes={}\n", self.memcpy_bytes));
        out.push_str(&format!("model_cycles={:.0}\n", self.clock_cycles));
        for (name, s) in &self.by_kernel {
            let key = name.replace([' ', '='], "_");
            out.push_str(&format!("kernel.{key}.launches={}\n", s.launches));
            out.push_str(&format!(
                "kernel.{key}.total_cycles={:.0}\n",
                s.total_cycles
            ));
            out.push_str(&format!("kernel.{key}.total_bytes={}\n", s.total_bytes));
            out.push_str(&format!("kernel.{key}.total_atomics={}\n", s.total_atomics));
            out.push_str(&format!(
                "kernel.{key}.dominant_bound={}\n",
                s.dominant_bound
            ));
        }
        out
    }

    /// Fraction of total model time spent in kernels whose name contains
    /// `pat`. This is how the reproduction checks statements like "a
    /// second call to `GrB_vxm` ends up taking nearly 50% of the runtime".
    pub fn time_fraction(&self, pat: &str) -> f64 {
        if self.clock_cycles == 0.0 {
            return 0.0;
        }
        let t: f64 = self
            .by_kernel
            .iter()
            .filter(|(name, _)| name.contains(pat))
            .map(|(_, s)| s.total_cycles)
            .sum();
        t / self.clock_cycles
    }
}

impl std::fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "launches={} syncs={} memcpys={} ({} B) model_cycles={:.0}",
            self.launches, self.syncs, self.memcpys, self.memcpy_bytes, self.clock_cycles
        )?;
        for (name, s) in &self.by_kernel {
            writeln!(
                f,
                "  {name:<32} x{:<6} {:>14.0} cyc {:>12} B {:>8} atomics  [{}]",
                s.launches, s.total_cycles, s.total_bytes, s.total_atomics, s.dominant_bound
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::KernelCost;

    fn rec(name: &'static str, cycles: f64) -> KernelRecord {
        KernelRecord {
            name,
            threads: 10,
            warps: 1,
            bytes: 100,
            atomics: 2,
            cost: KernelCost {
                total_cycles: cycles,
                ..Default::default()
            },
        }
    }

    #[test]
    fn clock_advances_with_records() {
        let mut p = Profiler::default();
        p.record_kernel(rec("a", 100.0));
        p.record_sync(50.0);
        p.record_memcpy(64, 25.0);
        assert_eq!(p.clock_cycles(), 175.0);
    }

    #[test]
    fn intern_returns_one_handle_per_name() {
        let a = intern_name("some::kernel");
        let b = intern_name("some::kernel");
        let c = intern_name("some::other");
        assert!(std::ptr::eq(a, b), "same name must intern to one handle");
        assert_eq!(a, "some::kernel");
        assert_eq!(c, "some::other");
    }

    #[test]
    fn report_sums_thread_executions() {
        let mut p = Profiler::default();
        p.record_kernel(rec("a", 10.0)); // 10 threads each
        p.record_kernel(rec("a", 10.0));
        p.record_kernel(rec("b", 10.0));
        let r = p.report();
        assert_eq!(r.thread_executions, 30);
        assert_eq!(r.by_kernel["a"].total_threads, 20);
        assert_eq!(r.by_kernel["b"].total_threads, 10);
    }

    #[test]
    fn report_groups_by_name() {
        let mut p = Profiler::default();
        p.record_kernel(rec("color", 100.0));
        p.record_kernel(rec("color", 60.0));
        p.record_kernel(rec("check", 40.0));
        let r = p.report();
        assert_eq!(r.launches, 3);
        assert_eq!(r.by_kernel["color"].launches, 2);
        assert_eq!(r.by_kernel["color"].total_cycles, 160.0);
        assert_eq!(r.by_kernel["check"].total_cycles, 40.0);
    }

    #[test]
    fn time_fraction() {
        let mut p = Profiler::default();
        p.record_kernel(rec("vxm_pass1", 75.0));
        p.record_kernel(rec("assign", 25.0));
        let r = p.report();
        assert_eq!(r.time_fraction("vxm"), 0.75);
        assert_eq!(r.time_fraction("nonexistent"), 0.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut p = Profiler::default();
        p.record_kernel(rec("a", 10.0));
        p.reset();
        assert_eq!(p.clock_cycles(), 0.0);
        assert!(p.records().is_empty());
    }

    #[test]
    fn display_renders() {
        let mut p = Profiler::default();
        p.record_kernel(rec("k", 10.0));
        let s = p.report().to_string();
        assert!(s.contains("k"));
        assert!(s.contains("launches=1"));
    }

    #[test]
    fn csv_has_header_kernel_rows_and_total() {
        let mut p = Profiler::default();
        p.record_kernel(rec("color", 100.0));
        p.record_kernel(rec("color", 60.0));
        p.record_kernel(rec("check", 40.0));
        p.record_memcpy(64, 25.0);
        let csv = p.report().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "kernel,launches,total_cycles,kernel_bytes,memcpy_bytes,total_atomics,dominant_bound"
        );
        // BTreeMap ordering: "check" before "color", then the total row.
        // Kernel rows: own bytes under kernel_bytes, 0 under memcpy_bytes.
        assert!(lines[1].starts_with("check,1,40,100,0,"));
        assert!(lines[2].starts_with("color,2,160,200,0,"));
        // _total: kernel-byte sum and memcpy-byte sum in distinct columns.
        assert!(lines[3].starts_with("_total,3,225,300,64,6,"));
        assert_eq!(lines.len(), 4);
        // Every row has the same column count as the header.
        for l in &lines {
            assert_eq!(l.split(',').count(), 7, "bad row: {l}");
        }
    }

    #[test]
    fn kv_dump_is_line_delimited_pairs() {
        let mut p = Profiler::default();
        p.record_kernel(rec("vxm pass", 75.0));
        p.record_sync(5.0);
        let kv = p.report().to_kv();
        assert!(kv.contains("launches=1\n"));
        assert!(kv.contains("syncs=1\n"));
        assert!(kv.contains("model_cycles=80\n"));
        // Kernel names are sanitized so keys stay parseable.
        assert!(kv.contains("kernel.vxm_pass.total_cycles=75\n"));
        for line in kv.lines() {
            assert_eq!(line.split('=').count(), 2, "bad kv line: {line}");
        }
    }

    #[test]
    fn empty_report_exports_cleanly() {
        let p = Profiler::default();
        let csv = p.report().to_csv();
        assert_eq!(csv.lines().count(), 2); // header + _total
        let kv = p.report().to_kv();
        assert!(kv.contains("launches=0\n"));
        assert!(kv.contains("model_cycles=0\n"));
    }
}
