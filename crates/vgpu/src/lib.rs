//! A virtual GPU: bulk-synchronous SIMT kernel execution on CPU threads
//! with an analytic performance model.
//!
//! The paper this repository reproduces runs CUDA kernels on an NVIDIA
//! K40c. This crate is the substitution substrate: kernels written against
//! [`Device::launch`] execute *for real* (on rayon worker threads, grouped
//! into warps and thread blocks exactly like the GPU grid), while every
//! global-memory access, atomic, and kernel launch is metered by a cost
//! model (see [`cost`]) whose terms mirror the effects the paper
//! discusses:
//!
//! * **warp divergence / load imbalance** — a warp's cost is the maximum
//!   over its 32 threads, so a serial for-loop over a high-degree vertex
//!   stalls its whole warp (the paper's `af_shell3` pathology);
//! * **memory coalescing** — sequential per-thread accesses bill the
//!   element size, scattered accesses bill a full 32-byte transaction;
//! * **kernel launch & global synchronization overhead** — every launch
//!   bills a fixed cost, which is what separates the one-kernel-per-
//!   iteration Gunrock IS implementation from the many-kernel
//!   advance/neighbor-reduce (AR) implementation;
//! * **atomics** — billed per-thread latency plus a device-wide
//!   serialization term.
//!
//! Model time is deterministic: the same program on the same input
//! produces exactly the same model nanoseconds, independent of host
//! machine and thread scheduling. Wall-clock performance of the simulator
//! itself is measured separately by the Criterion benches.
//!
//! ```
//! use gc_vgpu::{Device, DeviceBuffer};
//!
//! let dev = Device::k40c();
//! let xs = dev.upload(&[1u32, 2, 3, 4]);
//! let out = DeviceBuffer::<u32>::zeroed(4);
//! dev.launch("double", 4, |t| {
//!     let i = t.tid();
//!     let v = t.read(&xs, i);
//!     t.write(&out, i, v * 2);
//! });
//! assert_eq!(dev.download(&out), vec![2, 4, 6, 8]);
//! assert_eq!(dev.profile().launches, 1);
//! assert!(dev.elapsed_ms() > 0.0); // transfers + kernel, all metered
//! ```

pub mod buffer;
pub mod config;
pub mod cost;
pub mod device;
pub mod pool;
pub mod primitives;
pub mod profiler;
pub mod rng;
pub mod scalar;
pub mod thread;

pub use buffer::{DeviceBuffer, SeqRun};
pub use config::DeviceConfig;
pub use device::{Device, LaunchGraph, TransferEvent};
pub use profiler::{CopyEngine, KernelRecord, ProfileReport};
pub use scalar::Scalar;
pub use thread::ThreadCtx;

#[cfg(test)]
mod proptests;
