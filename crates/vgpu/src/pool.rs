//! Per-thread device-buffer pooling.
//!
//! A coloring allocates the same handful of buffer shapes every run
//! (colors, weights, frontier scratch — all sized by the graph). A
//! service worker that colors same-sized graphs back to back therefore
//! pays a malloc/free round trip per buffer per request for storage it
//! just released. This module gives each thread an opt-in free list:
//! while enabled, dropping a [`crate::DeviceBuffer`] shelves its cell
//! storage keyed by `(element type, length)`, and the next same-shaped
//! allocation reuses it (re-initialized, so `zeroed` still means zeroed).
//!
//! Pooling is per-thread by design — the service's workers each own a
//! device and a thread, so their pools need no locking and die with the
//! worker. Nothing changes for threads that never call
//! [`enable_for_thread`]: allocation and drop behave exactly as before.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shelved storage per `(element type, length)` shape.
type Shelf = HashMap<(TypeId, usize), Vec<Box<dyn Any>>>;

/// Retained allocations per shape; beyond this, drops free normally.
const MAX_PER_SHAPE: usize = 8;

thread_local! {
    static POOL: RefCell<Option<Shelf>> = const { RefCell::new(None) };
}

// Fleet-wide counters (all threads) so callers can observe pooling
// without reaching into worker threads.
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RETURNS: AtomicU64 = AtomicU64::new(0);

/// Cumulative pooling counters across all threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from a shelf.
    pub hits: u64,
    /// Allocations that went to the allocator while pooling was enabled.
    pub misses: u64,
    /// Buffer storages shelved at drop.
    pub returns: u64,
}

/// Snapshot of the global pooling counters. Counters only move while
/// some thread has pooling enabled, and only ever increase.
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        returns: RETURNS.load(Ordering::Relaxed),
    }
}

/// Turns pooling on for the calling thread (idempotent). Service workers
/// call this once at startup so buffers recycle across requests.
pub fn enable_for_thread() {
    POOL.with(|p| {
        let mut guard = p.borrow_mut();
        if guard.is_none() {
            *guard = Some(HashMap::new());
        }
    });
}

/// Turns pooling off for the calling thread and frees everything
/// shelved on it.
pub fn disable_for_thread() {
    POOL.with(|p| *p.borrow_mut() = None);
}

/// Whether the calling thread currently pools buffers.
pub fn enabled_for_thread() -> bool {
    POOL.with(|p| p.borrow().is_some())
}

/// Scoped pooling: enables the calling thread's pool for the lease's
/// lifetime and restores the prior state on drop.
///
/// This is how a colorer opts its per-iteration scratch (contraction
/// outputs, proposal mirrors, captured-pipeline temporaries) into reuse
/// without changing behavior for the rest of the thread: if pooling was
/// already on — a service worker — the lease is a no-op and the worker's
/// long-lived pool keeps going; otherwise the pool (and its shelved
/// storage) dies with the lease.
#[must_use = "the lease enables pooling only while it is alive"]
#[derive(Debug)]
pub struct PoolLease {
    was_enabled: bool,
}

/// Acquires a scoped pooling lease for the calling thread. See
/// [`PoolLease`].
pub fn lease() -> PoolLease {
    let was_enabled = enabled_for_thread();
    enable_for_thread();
    PoolLease { was_enabled }
}

impl Drop for PoolLease {
    fn drop(&mut self) {
        if !self.was_enabled {
            disable_for_thread();
        }
    }
}

/// Claims shelved storage of the exact shape, if pooling is enabled and
/// a shelf has one. The caller must re-initialize the cells.
pub(crate) fn claim<A: Any>(len: usize) -> Option<Box<[A]>> {
    if len == 0 {
        return None;
    }
    POOL.with(|p| {
        let mut guard = p.borrow_mut();
        let shelf = guard.as_mut()?;
        match shelf.get_mut(&(TypeId::of::<A>(), len)).and_then(Vec::pop) {
            Some(stored) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                Some(*stored.downcast::<Box<[A]>>().expect("shelf shape key"))
            }
            None => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    })
}

/// Shelves dropped storage for reuse. No-op (storage just frees) when
/// pooling is off, the buffer is empty, or the shape's shelf is full.
pub(crate) fn offer<A: Any>(cells: Box<[A]>) {
    if cells.is_empty() {
        return;
    }
    POOL.with(|p| {
        let mut guard = p.borrow_mut();
        let Some(shelf) = guard.as_mut() else { return };
        let entry = shelf.entry((TypeId::of::<A>(), cells.len())).or_default();
        if entry.len() < MAX_PER_SHAPE {
            entry.push(Box::new(cells));
            RETURNS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DeviceBuffer;

    /// Pool state is thread-local, so isolate each test on its own
    /// thread (the test harness reuses threads between tests).
    fn on_fresh_thread(f: impl FnOnce() + Send + 'static) {
        std::thread::spawn(f).join().unwrap();
    }

    #[test]
    fn disabled_pool_never_counts() {
        on_fresh_thread(|| {
            assert!(!enabled_for_thread());
            let before = stats();
            drop(DeviceBuffer::<u32>::zeroed(64));
            let _ = DeviceBuffer::<u32>::zeroed(64);
            let after = stats();
            // Other test threads may pool concurrently; this thread's
            // traffic must not be attributable — checked via enablement,
            // and the returns counter not being forced upward here.
            assert!(!enabled_for_thread());
            assert!(after.hits >= before.hits);
        });
    }

    #[test]
    fn same_shape_allocation_reuses_storage() {
        on_fresh_thread(|| {
            enable_for_thread();
            let before = stats();
            let a = DeviceBuffer::<u32>::filled(128, 7);
            drop(a);
            let b = DeviceBuffer::<u32>::zeroed(128);
            let after = stats();
            assert!(after.returns > before.returns, "drop shelves storage");
            assert!(after.hits > before.hits, "realloc claims the shelf");
            // Reuse must not leak the old contents.
            assert_eq!(b.to_vec(), vec![0u32; 128]);
            disable_for_thread();
        });
    }

    #[test]
    fn different_shapes_do_not_cross() {
        on_fresh_thread(|| {
            enable_for_thread();
            drop(DeviceBuffer::<u32>::zeroed(100));
            let before = stats();
            // Same length, different element type: no hit.
            let _ = DeviceBuffer::<i64>::zeroed(100);
            // Same type, different length: no hit.
            let _ = DeviceBuffer::<u32>::zeroed(101);
            let after = stats();
            assert_eq!(after.hits, before.hits);
            disable_for_thread();
        });
    }

    #[test]
    fn lease_enables_then_restores() {
        on_fresh_thread(|| {
            assert!(!enabled_for_thread());
            {
                let _lease = lease();
                assert!(enabled_for_thread());
                drop(DeviceBuffer::<u32>::zeroed(32));
                let before = stats();
                let _b = DeviceBuffer::<u32>::zeroed(32);
                assert!(stats().hits > before.hits, "lease recycles storage");
            }
            assert!(!enabled_for_thread(), "lease restores the off state");
        });
    }

    #[test]
    fn nested_lease_keeps_outer_pool_alive() {
        on_fresh_thread(|| {
            enable_for_thread();
            {
                let _lease = lease();
                assert!(enabled_for_thread());
            }
            assert!(
                enabled_for_thread(),
                "inner lease must not tear down a pre-enabled pool"
            );
            disable_for_thread();
        });
    }

    #[test]
    fn from_slice_reuses_and_copies() {
        on_fresh_thread(|| {
            enable_for_thread();
            drop(DeviceBuffer::<u32>::filled(4, 9));
            let before = stats();
            let b = DeviceBuffer::from_slice(&[1u32, 2, 3, 4]);
            assert!(stats().hits > before.hits);
            assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
            disable_for_thread();
        });
    }
}
