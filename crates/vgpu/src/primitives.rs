//! Device-wide primitives: reduction, prefix scan, stream compaction, and
//! segmented reduction.
//!
//! These are the building blocks Gunrock's load-balanced `advance` and
//! `neighbor-reduce` operators (and several GraphBLAS operations) lower
//! to. Each primitive executes the same multi-kernel structure the CUDA
//! versions use — so a neighbor-reduce costs three launches, not one,
//! which is exactly the overhead the paper measures for its AR
//! implementation — while the *values* are computed deterministically.

use crate::buffer::DeviceBuffer;
use crate::device::Device;
use crate::scalar::Scalar;
use crate::thread::{intern_costs, ThreadCtx};

/// Cycles billed per tree-reduction step inside a warp (shuffle cost).
const SHUFFLE_CYCLES: u64 = 6;

/// Cycles billed per thread for the decoupled-lookback wait in the
/// single-pass fused compaction (the spin on the previous block's
/// inclusive total).
const LOOKBACK_CYCLES: u64 = 4;

/// Device-wide reduction with an associative operator.
///
/// Two-pass block reduction: one kernel reduces each block to a partial,
/// a second kernel folds the partials. Returns the reduced value.
pub fn reduce<T, F>(dev: &Device, name: &str, buf: &DeviceBuffer<T>, identity: T, op: F) -> T
where
    T: Scalar,
    F: Fn(T, T) -> T + Sync,
{
    let n = buf.len();
    if n == 0 {
        dev.launch(name, 0, |_| {});
        return identity;
    }
    let block = dev.config().block_size as usize;
    dev.launch(name, n, |t| {
        let _ = t.read(buf, t.tid());
        t.charge(SHUFFLE_CYCLES);
    });
    // Block partials, computed in deterministic block order.
    let data = buf.to_vec();
    let partials: Vec<T> = data
        .chunks(block)
        .map(|c| c.iter().copied().fold(identity, &op))
        .collect();
    if partials.len() > 1 {
        let pbuf = DeviceBuffer::from_slice(&partials);
        dev.launch(&format!("{name}:final"), partials.len(), |t| {
            let _ = t.read(&pbuf, t.tid());
            t.charge(SHUFFLE_CYCLES);
        });
    }
    partials.into_iter().fold(identity, &op)
}

/// Exclusive prefix sum over `u32` counts. Returns the offsets buffer
/// (same length as the input) and the total sum.
///
/// Three-kernel structure (block scan, partial scan, uniform add), as in
/// a standard GPU scan.
pub fn exclusive_scan(
    dev: &Device,
    name: &str,
    input: &DeviceBuffer<u32>,
) -> (DeviceBuffer<u32>, u64) {
    let n = input.len();
    let data = input.to_vec();
    let mut out = Vec::with_capacity(n);
    let mut acc: u64 = 0;
    for &v in &data {
        out.push(acc as u32);
        acc += v as u64;
    }
    let out_buf = DeviceBuffer::from_slice(&out);
    if n == 0 {
        dev.launch(name, 0, |_| {});
        return (out_buf, 0);
    }
    let block = dev.config().block_size as usize;
    // Pass 1: per-block scan (read input, write local scan).
    dev.launch(name, n, |t| {
        let tid = t.tid();
        let _ = t.read(input, tid);
        t.charge(SHUFFLE_CYCLES);
        t.write(&out_buf, tid, out[tid]);
    });
    let blocks = n.div_ceil(block);
    if blocks > 1 {
        // Pass 2: scan of block totals.
        dev.launch(&format!("{name}:partials"), blocks, |t| {
            t.charge(SHUFFLE_CYCLES + 2);
        });
        // Pass 3: uniform add of block offsets.
        dev.launch(&format!("{name}:uniform_add"), n, |t| {
            let tid = t.tid();
            let v = t.read(&out_buf, tid);
            t.write(&out_buf, tid, v);
        });
    }
    (out_buf, acc)
}

/// Stream compaction: returns the (metered) buffer of elements whose flag
/// is nonzero, preserving order, plus its length.
///
/// Scan + scatter, the standard two-kernel filter.
pub fn compact(
    dev: &Device,
    name: &str,
    values: &DeviceBuffer<u32>,
    flags: &DeviceBuffer<u8>,
) -> DeviceBuffer<u32> {
    assert_eq!(values.len(), flags.len(), "values/flags length mismatch");
    let counts: Vec<u32> = flags.to_vec().iter().map(|&f| (f != 0) as u32).collect();
    let counts_buf = DeviceBuffer::from_slice(&counts);
    let (offsets, total) = exclusive_scan(dev, &format!("{name}:scan"), &counts_buf);
    let out = DeviceBuffer::<u32>::zeroed(total as usize);
    let n = values.len();
    dev.launch(&format!("{name}:scatter"), n, |t| {
        let tid = t.tid();
        let keep = t.read(flags, tid);
        if keep != 0 {
            let dst = t.read(&offsets, tid);
            let v = t.read(values, tid);
            t.write(&out, dst as usize, v);
        }
    });
    out
}

/// Predicate-driven stream compaction over the index domain `0..n`:
/// returns the (metered) ascending buffer of indices `i` for which
/// `pred` holds. `pred` receives the thread context, so any buffer reads
/// it performs are billed like the real predicate kernel's.
///
/// Work-efficient two-kernel structure: `:scan` evaluates the predicate
/// and runs a shuffle-based block-local exclusive scan in one pass,
/// `:scatter` re-derives each kept element's local rank from the flags
/// (shared memory on hardware), adds the scanned block offset, and
/// writes. A tiny `:partials` launch over the per-block totals sits
/// between them when the launch spans multiple blocks. Compared to the
/// flags-buffer [`compact`] (predicate + 3-kernel scan + scatter ≈ four
/// full-width passes), this costs two — and the output length *is* the
/// surviving-element count, so callers fuse their convergence check into
/// the compaction instead of running a separate full-width reduction.
pub fn compact_indices<P>(dev: &Device, name: &str, n: usize, pred: P) -> DeviceBuffer<u32>
where
    P: Fn(&mut ThreadCtx, usize) -> bool + Sync,
{
    compact_by(dev, name, n, |_, i| i as u32, |t, i, _| pred(t, i))
}

/// Predicate-driven stream compaction over the *values* of a buffer:
/// returns the (metered) buffer of `values[i]` whose predicate holds, in
/// order. The predicate receives each element's value (already billed as
/// a sequential read); this is the frontier-contraction shape — `values`
/// is the active-vertex list and `pred` keeps the still-active ones.
/// Same two-kernel structure as [`compact_indices`].
pub fn compact_values<P>(
    dev: &Device,
    name: &str,
    values: &DeviceBuffer<u32>,
    pred: P,
) -> DeviceBuffer<u32>
where
    P: Fn(&mut ThreadCtx, u32) -> bool + Sync,
{
    compact_by(
        dev,
        name,
        values.len(),
        |t, i| t.read(values, i),
        |t, _, v| pred(t, v),
    )
}

/// Shared body of [`compact_indices`] / [`compact_values`]: `get` maps a
/// thread index to the candidate value (metered when it reads a buffer),
/// `pred` decides survival.
fn compact_by<G, P>(dev: &Device, name: &str, n: usize, get: G, pred: P) -> DeviceBuffer<u32>
where
    G: Fn(&mut ThreadCtx, usize) -> u32 + Sync,
    P: Fn(&mut ThreadCtx, usize, u32) -> bool + Sync,
{
    if n == 0 {
        dev.launch(&format!("{name}:scan"), 0, |_| {});
        return DeviceBuffer::zeroed(0);
    }
    let flags = DeviceBuffer::<u8>::zeroed(n);
    // Kernel 1: predicate + block-local exclusive scan in one pass. The
    // scan's lane traffic is shuffle-based (no global memory), so each
    // thread bills shuffle cycles plus its flag write.
    dev.launch(&format!("{name}:scan"), n, |t| {
        let i = t.tid();
        let v = get(t, i);
        let keep = pred(t, i, v);
        t.charge(SHUFFLE_CYCLES);
        t.write(&flags, i, keep as u8);
    });
    let block = dev.config().block_size as usize;
    let blocks = n.div_ceil(block);
    if blocks > 1 {
        // Tiny pass: exclusive scan of the per-block totals.
        dev.launch(&format!("{name}:partials"), blocks, |t| {
            t.charge(SHUFFLE_CYCLES + 2);
        });
    }
    // Host mirror of the ranks (block-local rank + block offset).
    let keeps = flags.to_vec();
    let mut ranks = vec![0u32; n];
    let mut total = 0u32;
    for (i, &k) in keeps.iter().enumerate() {
        ranks[i] = total;
        total += (k != 0) as u32;
    }
    let out = DeviceBuffer::<u32>::zeroed(total as usize);
    // Kernel 2: scatter. Each thread reloads its flag, re-derives its
    // rank from shared memory (billed as shuffle work), and surviving
    // threads write their value at the rank — consecutive survivors
    // write consecutive slots, so the writes coalesce.
    dev.launch(&format!("{name}:scatter"), n, |t| {
        let i = t.tid();
        let keep = t.read(&flags, i);
        t.charge(SHUFFLE_CYCLES);
        if keep != 0 {
            let v = get(t, i);
            t.write(&out, ranks[i] as usize, v);
        }
    });
    out
}

/// Single-kernel fusion of [`compact_indices`]: the same predicate and
/// the same sorted-survivor output, in **one** launch instead of the
/// two-kernel scan/scatter (plus partials) chain.
///
/// Models a decoupled-lookback compaction (CUB's `DeviceSelect`): each
/// thread evaluates the predicate once, runs the block-local shuffle
/// scan, waits on the previous block's inclusive total (the lookback
/// spin, billed as `LOOKBACK_CYCLES`), and surviving threads write
/// their element straight to its final rank — no flags buffer, no second
/// predicate pass, no separate scatter. This is the contraction shape
/// every frontier loop runs once per iteration, so the 3→1 launch saving
/// multiplies by the iteration count.
pub fn compact_indices_fused<P>(dev: &Device, name: &str, n: usize, pred: P) -> DeviceBuffer<u32>
where
    P: Fn(&mut ThreadCtx, usize) -> bool + Sync,
{
    compact_by_fused(dev, name, n, |_, i| i as u32, |t, i, _| pred(t, i))
}

/// Single-kernel fusion of [`compact_values`]: filters the *values* of a
/// buffer through `pred` in one launch. See [`compact_indices_fused`].
pub fn compact_values_fused<P>(
    dev: &Device,
    name: &str,
    values: &DeviceBuffer<u32>,
    pred: P,
) -> DeviceBuffer<u32>
where
    P: Fn(&mut ThreadCtx, u32) -> bool + Sync,
{
    compact_by_fused(
        dev,
        name,
        values.len(),
        |t, i| t.read(values, i),
        |t, _, v| pred(t, v),
    )
}

/// Shared body of the fused compactions.
///
/// The survivor ranks must exist before the metered launch runs (threads
/// execute concurrently, and the output buffer is sized by the survivor
/// count), so the host pre-evaluates `get`/`pred` with a throwaway
/// context whose counters are discarded — the launch below re-evaluates
/// both with real billing, exactly once per element, so the modeled cost
/// is one full-width pass. `get` and `pred` must therefore be
/// deterministic (true of every compaction predicate in this codebase:
/// they read device buffers that the pipeline only mutates *between*
/// compactions).
fn compact_by_fused<G, P>(dev: &Device, name: &str, n: usize, get: G, pred: P) -> DeviceBuffer<u32>
where
    G: Fn(&mut ThreadCtx, usize) -> u32 + Sync,
    P: Fn(&mut ThreadCtx, usize, u32) -> bool + Sync,
{
    if n == 0 {
        dev.launch(name, 0, |_| {});
        return DeviceBuffer::zeroed(0);
    }
    // Host mirror of the ranks. Counters of the throwaway contexts are
    // dropped on the floor; the launch below bills the same accesses.
    let costs = intern_costs(dev.config());
    let warp_size = dev.config().warp_size;
    let mut ranks = vec![0u32; n];
    let mut total = 0u32;
    for (i, rank) in ranks.iter_mut().enumerate() {
        let mut scratch = ThreadCtx::new(i, warp_size, costs);
        let v = get(&mut scratch, i);
        let keep = pred(&mut scratch, i, v);
        *rank = total;
        total += keep as u32;
    }
    let out = DeviceBuffer::<u32>::zeroed(total as usize);
    // The one metered kernel: predicate + block-local scan + lookback +
    // rank-addressed write. Consecutive survivors write consecutive
    // slots, so the writes coalesce like the unfused scatter's.
    dev.launch(name, n, |t| {
        let i = t.tid();
        let v = get(t, i);
        let keep = pred(t, i, v);
        t.charge(SHUFFLE_CYCLES + LOOKBACK_CYCLES);
        if keep {
            t.write(&out, ranks[i] as usize, v);
        }
    });
    out
}

/// Segmented reduction: for each segment `s` defined by
/// `offsets[s]..offsets[s+1]` over `values`, computes the reduction under
/// `op`. Empty segments get `identity`.
///
/// Modeled as the standard two-kernel segmented reduce (per-element pass
/// plus segment-carry fix-up), the core of Gunrock's neighbor-reduce.
pub fn segmented_reduce<T, F>(
    dev: &Device,
    name: &str,
    values: &DeviceBuffer<T>,
    offsets: &[usize],
    identity: T,
    op: F,
) -> Vec<T>
where
    T: Scalar,
    F: Fn(T, T) -> T + Sync,
{
    assert!(
        !offsets.is_empty(),
        "offsets must contain at least the leading 0"
    );
    let n = values.len();
    assert_eq!(
        *offsets.last().unwrap(),
        n,
        "offsets must end at values.len()"
    );
    // Element pass: every value is read once.
    dev.launch(name, n, |t| {
        let _ = t.read(values, t.tid());
        t.charge(SHUFFLE_CYCLES);
    });
    // Carry fix-up pass over segments. Segment scheduling wastes SIMT
    // lanes: a segment shorter than a warp still occupies warp-width
    // slots (the exact bottleneck the paper blames for its AR coloring:
    // "segments to threads, warps or blocks depending on the size").
    // Each fix-up thread bills the idle lanes of its segment.
    let segs = offsets.len() - 1;
    let warp = dev.config().warp_size as usize;
    let issue = dev.config().mem_issue_cycles;
    let offs_ref = offsets;
    dev.launch(&format!("{name}:fixup"), segs, |t| {
        let s = t.tid();
        let len = offs_ref[s + 1] - offs_ref[s];
        let waste = warp.saturating_sub(len) as u64;
        t.charge(SHUFFLE_CYCLES + waste * issue);
    });
    let data = values.to_vec();
    offsets
        .windows(2)
        .map(|w| data[w[0]..w[1]].iter().copied().fold(identity, &op))
        .collect()
}

/// Least-significant-digit radix sort of `u32` keys, 8 bits per pass.
///
/// Four passes, each the standard three-kernel chain (per-block digit
/// histogram, scan of the digit table, stable scatter); the scatter's
/// writes are genuinely scattered and billed as transactions, which is
/// why GPU sorts are bandwidth-hungry. Returns the sorted buffer.
pub fn radix_sort(dev: &Device, name: &str, keys: &DeviceBuffer<u32>) -> DeviceBuffer<u32> {
    const BITS: u32 = 8;
    const BUCKETS: usize = 1 << BITS;
    let n = keys.len();
    let mut current = keys.to_vec();
    let out = DeviceBuffer::<u32>::zeroed(n);
    if n == 0 {
        dev.launch(name, 0, |_| {});
        return out;
    }
    for pass in 0..(32 / BITS) {
        let shift = pass * BITS;
        // Kernel 1: digit histogram.
        let hist = DeviceBuffer::<u32>::zeroed(BUCKETS);
        let cur_dev = DeviceBuffer::from_slice(&current);
        dev.launch(&format!("{name}:hist{pass}"), n, |t| {
            let i = t.tid();
            let k = t.read(&cur_dev, i);
            let digit = ((k >> shift) as usize) & (BUCKETS - 1);
            t.atomic_add(&hist, digit, 1);
        });
        // Kernel 2: scan of the digit table.
        let (_, _) = exclusive_scan(dev, &format!("{name}:scan{pass}"), &hist);
        // Kernel 3: stable scatter by digit.
        dev.launch(&format!("{name}:scatter{pass}"), n, |t| {
            let i = t.tid();
            let k = t.read(&cur_dev, i);
            // Billed as a scattered write through a synthetic index: the
            // position is data-dependent.
            t.write(&out, (i * 7 + 13) % n, k);
        });
        // Host mirror of the stable pass.
        let mut counts = vec![0usize; BUCKETS];
        for &k in &current {
            counts[((k >> shift) as usize) & (BUCKETS - 1)] += 1;
        }
        let mut offsets = vec![0usize; BUCKETS];
        for b in 1..BUCKETS {
            offsets[b] = offsets[b - 1] + counts[b - 1];
        }
        let mut next = vec![0u32; n];
        for &k in &current {
            let d = ((k >> shift) as usize) & (BUCKETS - 1);
            next[offsets[d]] = k;
            offsets[d] += 1;
        }
        current = next;
    }
    out.copy_from_slice(&current);
    out
}

/// Gather: `out[i] = values[indices[i]]` (one metered kernel; the
/// scattered reads bill full transactions, as on hardware).
pub fn gather<T: Scalar>(
    dev: &Device,
    name: &str,
    values: &DeviceBuffer<T>,
    indices: &DeviceBuffer<u32>,
) -> DeviceBuffer<T> {
    let n = indices.len();
    let out = DeviceBuffer::<T>::zeroed(n);
    dev.launch(name, n, |t| {
        let i = t.tid();
        let idx = t.read(indices, i) as usize;
        let v = t.read(values, idx);
        t.write(&out, i, v);
    });
    out
}

/// Histogram over `bins` buckets with atomic increments — the classic
/// contended-atomics kernel; useful for degree distributions and as an
/// atomics stress test for the cost model.
pub fn histogram(dev: &Device, name: &str, keys: &DeviceBuffer<u32>, bins: usize) -> Vec<u64> {
    let counts = DeviceBuffer::<u32>::zeroed(bins);
    dev.launch(name, keys.len(), |t| {
        let i = t.tid();
        let k = t.read(keys, i) as usize;
        if k < bins {
            t.atomic_add(&counts, k, 1);
        }
    });
    counts.to_vec().into_iter().map(u64::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn dev() -> Device {
        Device::new(DeviceConfig::test_tiny())
    }

    #[test]
    fn reduce_sum_matches_reference() {
        let d = dev();
        let data: Vec<u32> = (0..1000).collect();
        let buf = DeviceBuffer::from_slice(&data);
        let s = reduce(&d, "sum", &buf, 0u32, |a, b| a + b);
        assert_eq!(s, data.iter().sum::<u32>());
    }

    #[test]
    fn reduce_max_and_min() {
        let d = dev();
        let buf = DeviceBuffer::from_slice(&[3i32, -7, 22, 5]);
        assert_eq!(reduce(&d, "max", &buf, i32::MIN, i32::max), 22);
        assert_eq!(reduce(&d, "min", &buf, i32::MAX, i32::min), -7);
    }

    #[test]
    fn reduce_empty_is_identity() {
        let d = dev();
        let buf = DeviceBuffer::<u32>::zeroed(0);
        assert_eq!(reduce(&d, "sum", &buf, 42u32, |a, b| a + b), 42);
    }

    #[test]
    fn reduce_launches_two_kernels_when_multi_block() {
        let d = dev(); // block_size = 8
        let buf = DeviceBuffer::<u32>::filled(100, 1);
        reduce(&d, "sum", &buf, 0u32, |a, b| a + b);
        let r = d.profile();
        assert_eq!(r.by_kernel["sum"].launches, 1);
        assert_eq!(r.by_kernel["sum:final"].launches, 1);
    }

    #[test]
    fn scan_matches_reference() {
        let d = dev();
        let data = vec![3u32, 0, 7, 1, 1];
        let buf = DeviceBuffer::from_slice(&data);
        let (out, total) = exclusive_scan(&d, "scan", &buf);
        assert_eq!(out.to_vec(), vec![0, 3, 3, 10, 11]);
        assert_eq!(total, 12);
    }

    #[test]
    fn scan_empty() {
        let d = dev();
        let buf = DeviceBuffer::<u32>::zeroed(0);
        let (out, total) = exclusive_scan(&d, "scan", &buf);
        assert_eq!(out.len(), 0);
        assert_eq!(total, 0);
    }

    #[test]
    fn scan_large_is_exact() {
        let d = dev();
        let data: Vec<u32> = (0..5000).map(|i| (i % 7) as u32).collect();
        let buf = DeviceBuffer::from_slice(&data);
        let (out, total) = exclusive_scan(&d, "scan", &buf);
        let got = out.to_vec();
        let mut acc = 0u64;
        for i in 0..data.len() {
            assert_eq!(got[i] as u64, acc, "offset {i}");
            acc += data[i] as u64;
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn compact_filters_and_preserves_order() {
        let d = dev();
        let values = DeviceBuffer::from_slice(&[10u32, 11, 12, 13, 14]);
        let flags = DeviceBuffer::from_slice(&[1u8, 0, 1, 0, 1]);
        let out = compact(&d, "filter", &values, &flags);
        assert_eq!(out.to_vec(), vec![10, 12, 14]);
    }

    #[test]
    fn compact_all_and_none() {
        let d = dev();
        let values = DeviceBuffer::from_slice(&[1u32, 2, 3]);
        let all = compact(&d, "f", &values, &DeviceBuffer::from_slice(&[1u8, 1, 1]));
        assert_eq!(all.to_vec(), vec![1, 2, 3]);
        let none = compact(&d, "f", &values, &DeviceBuffer::from_slice(&[0u8, 0, 0]));
        assert_eq!(none.len(), 0);
    }

    #[test]
    fn compact_indices_keeps_matching_in_order() {
        let d = dev();
        let data = DeviceBuffer::from_slice(&[5u32, 0, 7, 0, 0, 9, 1]);
        let out = compact_indices(&d, "ci", data.len(), |t, i| t.read(&data, i) != 0);
        assert_eq!(out.to_vec(), vec![0, 2, 5, 6]);
    }

    #[test]
    fn compact_indices_all_none_empty() {
        let d = dev();
        let all = compact_indices(&d, "ci", 3, |_, _| true);
        assert_eq!(all.to_vec(), vec![0, 1, 2]);
        let none = compact_indices(&d, "ci", 3, |_, _| false);
        assert_eq!(none.len(), 0);
        let empty = compact_indices(&d, "ci", 0, |_, _| true);
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn compact_values_filters_by_value() {
        let d = dev();
        let values = DeviceBuffer::from_slice(&[4u32, 9, 2, 9, 6]);
        let out = compact_values(&d, "cv", &values, |_, v| v != 9);
        assert_eq!(out.to_vec(), vec![4, 2, 6]);
    }

    #[test]
    fn compact_indices_launches_fewer_kernels_than_compact() {
        // The fused predicate + block-scan path must cost two full-width
        // launches (plus the tiny partials pass) where the flags-based
        // compact costs four — that gap is the per-iteration saving every
        // frontier loop banks.
        let n = 100; // block_size 8 -> multi-block
        let lean = {
            let d = dev();
            let _ = compact_indices(&d, "c", n, |t, i| i % 2 == 0 && t.tid() < n);
            d.profile().launches
        };
        let classic = {
            let d = dev();
            let values = DeviceBuffer::from_slice(&(0..n as u32).collect::<Vec<_>>());
            let flags =
                DeviceBuffer::from_slice(&(0..n).map(|i| (i % 2 == 0) as u8).collect::<Vec<_>>());
            let _ = compact(&d, "c", &values, &flags);
            d.profile().launches
        };
        assert_eq!(lean, 3, "scan + partials + scatter");
        assert!(lean < classic, "lean {lean} vs classic {classic}");
    }

    #[test]
    fn compact_indices_output_length_is_survivor_count() {
        let d = dev();
        let keep = [true, false, true, true, false, false, true];
        let flags = DeviceBuffer::from_slice(&keep.map(|k| k as u8));
        let out = compact_indices(&d, "ci", keep.len(), |t, i| t.read(&flags, i) != 0);
        assert_eq!(out.len(), keep.iter().filter(|&&k| k).count());
    }

    #[test]
    fn fused_compaction_matches_two_kernel_output() {
        let d = dev();
        let data = DeviceBuffer::from_slice(&[5u32, 0, 7, 0, 0, 9, 1]);
        let fused = compact_indices_fused(&d, "cf", data.len(), |t, i| t.read(&data, i) != 0);
        let plain = compact_indices(&d, "ci", data.len(), |t, i| t.read(&data, i) != 0);
        assert_eq!(fused.to_vec(), plain.to_vec());
        assert_eq!(fused.to_vec(), vec![0, 2, 5, 6]);
    }

    #[test]
    fn fused_compaction_is_one_launch() {
        let n = 100; // block_size 8 -> multi-block
        let d = dev();
        let _ = compact_indices_fused(&d, "cf", n, |_, i| i % 2 == 0);
        let r = d.profile();
        assert_eq!(r.launches, 1, "fused compaction is a single kernel");
        // The two-kernel path costs 3 launches on a multi-block extent
        // (pinned below); the fused path must also be cheaper in cycles.
        let d2 = dev();
        let _ = compact_indices(&d2, "ci", n, |_, i| i % 2 == 0);
        assert!(d.elapsed_cycles() < d2.elapsed_cycles());
    }

    #[test]
    fn fused_compaction_all_none_empty() {
        let d = dev();
        let all = compact_indices_fused(&d, "cf", 3, |_, _| true);
        assert_eq!(all.to_vec(), vec![0, 1, 2]);
        let none = compact_indices_fused(&d, "cf", 3, |_, _| false);
        assert_eq!(none.len(), 0);
        let empty = compact_indices_fused(&d, "cf", 0, |_, _| true);
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn fused_values_compaction_filters_by_value() {
        let d = dev();
        let values = DeviceBuffer::from_slice(&[4u32, 9, 2, 9, 6]);
        let fused = compact_values_fused(&d, "cvf", &values, |_, v| v != 9);
        let plain = compact_values(&d, "cv", &values, |_, v| v != 9);
        assert_eq!(fused.to_vec(), plain.to_vec());
        assert_eq!(fused.to_vec(), vec![4, 2, 6]);
    }

    #[test]
    fn segmented_reduce_matches_reference() {
        let d = dev();
        let values = DeviceBuffer::from_slice(&[1u32, 2, 3, 4, 5, 6]);
        let offsets = vec![0, 2, 2, 5, 6];
        let out = segmented_reduce(&d, "segsum", &values, &offsets, 0u32, |a, b| a + b);
        assert_eq!(out, vec![3, 0, 12, 6]);
    }

    #[test]
    fn segmented_reduce_max_with_identity() {
        let d = dev();
        let values = DeviceBuffer::from_slice(&[5u32, 1, 9]);
        let offsets = vec![0, 0, 3];
        let out = segmented_reduce(&d, "segmax", &values, &offsets, 0u32, u32::max);
        assert_eq!(out, vec![0, 9]);
    }

    #[test]
    #[should_panic(expected = "offsets must end")]
    fn segmented_reduce_validates_offsets() {
        let d = dev();
        let values = DeviceBuffer::from_slice(&[1u32, 2]);
        segmented_reduce(&d, "bad", &values, &[0, 1], 0u32, |a, b| a + b);
    }

    #[test]
    fn radix_sort_sorts() {
        let d = dev();
        let keys = DeviceBuffer::from_slice(&[170u32, 45, 75, 90, 2, 802, 24, 66]);
        let out = radix_sort(&d, "sort", &keys);
        assert_eq!(out.to_vec(), vec![2, 24, 45, 66, 75, 90, 170, 802]);
    }

    #[test]
    fn radix_sort_handles_duplicates_and_extremes() {
        let d = dev();
        let keys = DeviceBuffer::from_slice(&[u32::MAX, 0, 7, 7, u32::MAX, 1]);
        let out = radix_sort(&d, "sort", &keys);
        assert_eq!(out.to_vec(), vec![0, 1, 7, 7, u32::MAX, u32::MAX]);
    }

    #[test]
    fn radix_sort_empty() {
        let d = dev();
        let keys = DeviceBuffer::<u32>::zeroed(0);
        assert_eq!(radix_sort(&d, "sort", &keys).len(), 0);
    }

    #[test]
    fn radix_sort_bills_multiple_passes() {
        let d = dev();
        let keys = DeviceBuffer::from_slice(&[3u32, 1, 2]);
        let _ = radix_sort(&d, "sort", &keys);
        let r = d.profile();
        // 4 passes x (hist + scan chain + scatter).
        assert!(r.launches >= 12, "{} launches", r.launches);
    }

    #[test]
    fn gather_matches_reference() {
        let d = dev();
        let values = DeviceBuffer::from_slice(&[10u32, 20, 30, 40]);
        let indices = DeviceBuffer::from_slice(&[3u32, 0, 0, 2]);
        let out = gather(&d, "g", &values, &indices);
        assert_eq!(out.to_vec(), vec![40, 10, 10, 30]);
    }

    #[test]
    fn gather_empty() {
        let d = dev();
        let values = DeviceBuffer::from_slice(&[1u32]);
        let indices = DeviceBuffer::<u32>::zeroed(0);
        assert_eq!(gather(&d, "g", &values, &indices).len(), 0);
    }

    #[test]
    fn histogram_counts_keys() {
        let d = dev();
        let keys = DeviceBuffer::from_slice(&[0u32, 1, 1, 2, 1, 0]);
        assert_eq!(histogram(&d, "h", &keys, 4), vec![2, 3, 1, 0]);
    }

    #[test]
    fn histogram_ignores_out_of_range() {
        let d = dev();
        let keys = DeviceBuffer::from_slice(&[0u32, 99, 1]);
        assert_eq!(histogram(&d, "h", &keys, 2), vec![1, 1]);
    }

    #[test]
    fn histogram_bills_atomics() {
        let d = dev();
        let keys = DeviceBuffer::<u32>::zeroed(100);
        let _ = histogram(&d, "h", &keys, 4);
        let rec = &d.profile().by_kernel["h"];
        assert_eq!(rec.total_atomics, 100);
    }

    #[test]
    fn primitives_bill_model_time() {
        let d = dev();
        let buf = DeviceBuffer::<u32>::filled(256, 1);
        let before = d.elapsed_cycles();
        let _ = reduce(&d, "sum", &buf, 0u32, |a, b| a + b);
        assert!(d.elapsed_cycles() > before);
    }
}
