//! Per-thread kernel execution context and access metering.

use crate::buffer::{DeviceBuffer, SeqRun};
use crate::config::DeviceConfig;
use crate::scalar::Scalar;

/// Raw activity counters accumulated by one simulated thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadCounters {
    /// Issue cycles spent by this thread (ALU + memory issue + atomics).
    pub cycles: u64,
    /// Bytes of DRAM traffic billed to this thread.
    pub bytes: u64,
    /// Number of atomic operations.
    pub atomics: u64,
    /// Number of global memory accesses (reads + writes).
    pub accesses: u64,
}

impl ThreadCounters {
    pub(crate) fn merge_sum(&mut self, other: &ThreadCounters) {
        self.cycles += other.cycles;
        self.bytes += other.bytes;
        self.atomics += other.atomics;
        self.accesses += other.accesses;
    }
}

/// Tracks the last-touched index of a few buffers to classify accesses as
/// sequential (coalescible, billed at element size) or scattered (billed
/// as a full memory transaction). Eight fully-associative entries with
/// round-robin replacement: any working set of up to eight buffers keeps
/// its sequential runs intact regardless of buffer ids. (A direct map
/// keyed on `buf_id % slots` let two hot buffers with colliding ids evict
/// each other on every access, mispricing coalesced scans as scattered.)
///
/// The tracker is *warp-scoped*: the launch loop threads one tracker
/// through all lanes of a warp in lane order, so the canonical coalesced
/// pattern — lane `i` touching `base + i` — is recognized across threads,
/// and a thread's own streaming scan (CSR neighbor lists) is recognized
/// within a thread.
#[derive(Clone, Copy, Debug)]
pub(crate) struct AccessTracker {
    /// `(buffer id, last index)` pairs; id 0 marks an empty entry
    /// (buffer ids start at 1).
    entries: [(u64, u64); 8],
    /// Next entry to evict on a miss.
    victim: u8,
}

impl AccessTracker {
    pub(crate) fn new() -> Self {
        AccessTracker {
            entries: [(0, u64::MAX); 8],
            victim: 0,
        }
    }

    /// Returns `true` if this access continues a sequential run over the
    /// given buffer.
    #[inline]
    fn observe(&mut self, buf_id: u64, index: usize) -> bool {
        for (id, last) in self.entries.iter_mut() {
            if *id == buf_id {
                let seq = (index as u64) == last.wrapping_add(1);
                *last = index as u64;
                return seq;
            }
        }
        self.entries[self.victim as usize] = (buf_id, index as u64);
        self.victim = (self.victim + 1) % self.entries.len() as u8;
        false
    }
}

/// Execution context handed to every simulated thread. All global-memory
/// traffic must flow through it so the cost model can meter the kernel.
pub struct ThreadCtx {
    tid: usize,
    lane: u32,
    warp: usize,
    warp_size: u32,
    cfg: &'static ConfigCosts,
    counters: ThreadCounters,
    tracker: AccessTracker,
}

/// The subset of [`DeviceConfig`] the hot path needs, kept in a static-
/// lifetime cell per launch to avoid borrowing issues in the closure.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ConfigCosts {
    pub mem_issue_cycles: u64,
    pub atomic_issue_cycles: u64,
    pub transaction_bytes: u64,
}

impl ConfigCosts {
    pub(crate) fn from_config(cfg: &DeviceConfig) -> Self {
        ConfigCosts {
            mem_issue_cycles: cfg.mem_issue_cycles,
            atomic_issue_cycles: cfg.atomic_issue_cycles,
            transaction_bytes: cfg.transaction_bytes,
        }
    }
}

// One leaked copy per distinct config; launches are frequent, configs are
// not, so interning through a leak is fine and keeps ThreadCtx cheap.
pub(crate) fn intern_costs(cfg: &DeviceConfig) -> &'static ConfigCosts {
    use std::sync::Mutex;
    use std::sync::OnceLock;
    static CACHE: OnceLock<Mutex<Vec<&'static ConfigCosts>>> = OnceLock::new();
    let want = ConfigCosts::from_config(cfg);
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    let mut guard = cache.lock().unwrap();
    for c in guard.iter() {
        if c.mem_issue_cycles == want.mem_issue_cycles
            && c.atomic_issue_cycles == want.atomic_issue_cycles
            && c.transaction_bytes == want.transaction_bytes
        {
            return c;
        }
    }
    let leaked: &'static ConfigCosts = Box::leak(Box::new(want));
    guard.push(leaked);
    leaked
}

impl ThreadCtx {
    pub(crate) fn new(tid: usize, warp_size: u32, cfg: &'static ConfigCosts) -> Self {
        ThreadCtx {
            tid,
            lane: (tid as u32) % warp_size,
            warp: tid / warp_size as usize,
            warp_size,
            cfg,
            counters: ThreadCounters::default(),
            tracker: AccessTracker::new(),
        }
    }

    /// Re-arms this context for the next lane of the warp: counters reset
    /// to zero, thread ids recomputed, and the warp-scoped access tracker
    /// carried over so coalesced lane-`i`-reads-`base+i` patterns are
    /// still recognized across lanes. Reusing one context per warp chunk
    /// avoids a per-thread construct/teardown (the tracker alone is a
    /// 130-byte copy in and out per thread on the old path).
    pub(crate) fn begin_lane(&mut self, tid: usize) {
        self.tid = tid;
        self.lane = (tid as u32) % self.warp_size;
        self.warp = tid / self.warp_size as usize;
        self.counters = ThreadCounters::default();
    }

    /// Global thread index within the launch (like
    /// `blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Lane within the warp.
    #[inline]
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Warp index within the launch.
    #[inline]
    pub fn warp(&self) -> usize {
        self.warp
    }

    /// Metered global-memory read.
    #[inline]
    pub fn read<T: Scalar>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.meter_access::<T>(buf.id(), i);
        buf.get(i)
    }

    /// Metered global-memory write.
    #[inline]
    pub fn write<T: Scalar>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) {
        self.meter_access::<T>(buf.id(), i);
        buf.set(i, v)
    }

    /// Metered read billed at element granularity regardless of the
    /// tracker's verdict. For access patterns that are coalesced *by
    /// construction across lanes* but invisible to the lane-serial
    /// tracker — e.g. a CSR-vector kernel where lane `l` reads slot
    /// `base + l` on every stride step.
    #[inline]
    pub fn read_coalesced<T: Scalar>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.read_seq(buf, i)
    }

    /// Metered read for an access that is sequential *by construction*
    /// (CSR row offsets, thread-mapped frontier slots, streaming scans):
    /// bills element-size bytes and one issue without consulting — or
    /// updating — the access tracker. The first-class form of the
    /// [`ThreadCtx::read_coalesced`] escape hatch; use it wherever the
    /// kernel's indexing proves coalescing statically.
    #[inline]
    pub fn read_seq<T: Scalar>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.counters.cycles += self.cfg.mem_issue_cycles;
        self.counters.accesses += 1;
        self.counters.bytes += T::BYTES;
        buf.get(i)
    }

    /// Metered write for a statically sequential access; the write-side
    /// twin of [`ThreadCtx::read_seq`].
    #[inline]
    pub fn write_seq<T: Scalar>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) {
        self.counters.cycles += self.cfg.mem_issue_cycles;
        self.counters.accesses += 1;
        self.counters.bytes += T::BYTES;
        buf.set(i, v)
    }

    /// Bills an entire sequential scan of `buf[start..end)` up front —
    /// `end - start` issues at element-size bytes, identical to that many
    /// [`ThreadCtx::read_seq`] calls but in O(1) arithmetic — and returns
    /// a [`SeqRun`] whose element reads are raw loads. This is the bulk
    /// fast path for CSR inner loops: the dominant cost of a neighbor
    /// scan drops from per-access metering to one bounds check and four
    /// additions for the whole row.
    #[inline]
    pub fn read_seq_run<'b, T: Scalar>(
        &mut self,
        buf: &'b DeviceBuffer<T>,
        start: usize,
        end: usize,
    ) -> SeqRun<'b, T> {
        let n = (end - start) as u64;
        self.counters.cycles += n * self.cfg.mem_issue_cycles;
        self.counters.accesses += n;
        self.counters.bytes += n * T::BYTES;
        SeqRun::new(buf.cells_range(start, end))
    }

    #[inline]
    fn meter_access<T: Scalar>(&mut self, buf_id: u64, i: usize) {
        let seq = self.tracker.observe(buf_id, i);
        self.counters.cycles += self.cfg.mem_issue_cycles;
        self.counters.accesses += 1;
        self.counters.bytes += if seq {
            T::BYTES
        } else {
            self.cfg.transaction_bytes
        };
    }

    #[inline]
    fn meter_atomic<T: Scalar>(&mut self) {
        self.counters.cycles += self.cfg.atomic_issue_cycles;
        self.counters.atomics += 1;
        self.counters.accesses += 1;
        self.counters.bytes += self.cfg.transaction_bytes.max(T::BYTES);
    }

    /// `atomicAdd`-style read-modify-write; returns the previous value.
    #[inline]
    pub fn atomic_add(&mut self, buf: &DeviceBuffer<u32>, i: usize, v: u32) -> u32 {
        self.meter_atomic::<u32>();
        u32::rmw(buf.cell(i), |x| x.wrapping_add(v))
    }

    /// Signed `atomicAdd`.
    #[inline]
    pub fn atomic_add_i32(&mut self, buf: &DeviceBuffer<i32>, i: usize, v: i32) -> i32 {
        self.meter_atomic::<i32>();
        i32::rmw(buf.cell(i), |x| x.wrapping_add(v))
    }

    /// `atomicMin`; returns the previous value.
    #[inline]
    pub fn atomic_min<T: Scalar + Ord>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) -> T {
        self.meter_atomic::<T>();
        T::rmw(buf.cell(i), |x| if v < x { v } else { x })
    }

    /// `atomicMax`; returns the previous value.
    #[inline]
    pub fn atomic_max<T: Scalar + Ord>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) -> T {
        self.meter_atomic::<T>();
        T::rmw(buf.cell(i), |x| if v > x { v } else { x })
    }

    /// `atomicCAS`; returns the value observed before the operation
    /// (CUDA semantics).
    #[inline]
    pub fn atomic_cas<T: Scalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        i: usize,
        expected: T,
        new: T,
    ) -> T {
        self.meter_atomic::<T>();
        match T::cas(buf.cell(i), expected, new) {
            Ok(prev) => prev,
            Err(seen) => seen,
        }
    }

    /// `atomicExch`; returns the previous value.
    #[inline]
    pub fn atomic_exchange<T: Scalar>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) -> T {
        self.meter_atomic::<T>();
        T::rmw(buf.cell(i), |_| v)
    }

    /// Generic atomic read-modify-write with a user combine: the final
    /// buffer value is order-independent when `f` is commutative and
    /// associative (the caller's obligation — this is what push-mode
    /// scatter-combines in GraphBLAS rely on). Returns the previous
    /// value.
    #[inline]
    pub fn atomic_combine<T: Scalar>(
        &mut self,
        buf: &DeviceBuffer<T>,
        i: usize,
        v: T,
        f: impl Fn(T, T) -> T,
    ) -> T {
        self.meter_atomic::<T>();
        T::rmw(buf.cell(i), |old| f(old, v))
    }

    /// Bills `cycles` of pure ALU work (comparisons, hashing, ...).
    #[inline]
    pub fn charge(&mut self, cycles: u64) {
        self.counters.cycles += cycles;
    }

    /// Counters accumulated so far.
    #[inline]
    pub fn counters(&self) -> ThreadCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ThreadCtx {
        let costs = intern_costs(&DeviceConfig::k40c());
        ThreadCtx::new(37, 32, costs)
    }

    #[test]
    fn ids_derived_from_tid() {
        let c = ctx();
        assert_eq!(c.tid(), 37);
        assert_eq!(c.lane(), 5);
        assert_eq!(c.warp(), 1);
    }

    #[test]
    fn read_write_meter_cycles_and_bytes() {
        let mut c = ctx();
        let buf = DeviceBuffer::from_slice(&[10u32, 20, 30]);
        assert_eq!(c.read(&buf, 0), 10);
        c.write(&buf, 2, 99);
        assert_eq!(buf.get(2), 99);
        let k = c.counters();
        assert_eq!(k.accesses, 2);
        assert_eq!(k.cycles, 2 * 4);
        assert!(k.bytes >= 2 * 4);
    }

    #[test]
    fn sequential_run_bills_element_size() {
        let mut c = ctx();
        let buf = DeviceBuffer::<u32>::zeroed(64);
        // First access: scattered (32 B); next 9 sequential (4 B each).
        for i in 0..10 {
            let _ = c.read(&buf, i);
        }
        assert_eq!(c.counters().bytes, 32 + 9 * 4);
    }

    #[test]
    fn scattered_accesses_bill_transactions() {
        let mut c = ctx();
        let buf = DeviceBuffer::<u32>::zeroed(100);
        for i in [0usize, 50, 3, 99, 7] {
            let _ = c.read(&buf, i);
        }
        assert_eq!(c.counters().bytes, 5 * 32);
    }

    #[test]
    fn atomics_metered_and_apply() {
        let mut c = ctx();
        let buf = DeviceBuffer::<u32>::zeroed(1);
        assert_eq!(c.atomic_add(&buf, 0, 5), 0);
        assert_eq!(c.atomic_add(&buf, 0, 2), 5);
        assert_eq!(buf.get(0), 7);
        assert_eq!(c.counters().atomics, 2);
        assert_eq!(c.counters().cycles, 2 * 24);
    }

    #[test]
    fn atomic_min_max() {
        let mut c = ctx();
        let buf = DeviceBuffer::from_slice(&[10u32]);
        assert_eq!(c.atomic_min(&buf, 0, 3), 10);
        assert_eq!(buf.get(0), 3);
        assert_eq!(c.atomic_max(&buf, 0, 8), 3);
        assert_eq!(buf.get(0), 8);
        assert_eq!(c.atomic_max(&buf, 0, 2), 8);
        assert_eq!(buf.get(0), 8);
    }

    #[test]
    fn atomic_cas_semantics() {
        let mut c = ctx();
        let buf = DeviceBuffer::from_slice(&[5i32]);
        // Matching expectation swaps and returns old.
        assert_eq!(c.atomic_cas(&buf, 0, 5, 9), 5);
        assert_eq!(buf.get(0), 9);
        // Mismatched expectation leaves value and returns observed.
        assert_eq!(c.atomic_cas(&buf, 0, 5, 11), 9);
        assert_eq!(buf.get(0), 9);
    }

    #[test]
    fn atomic_exchange_returns_previous() {
        let mut c = ctx();
        let buf = DeviceBuffer::from_slice(&[1u32]);
        assert_eq!(c.atomic_exchange(&buf, 0, 42), 1);
        assert_eq!(buf.get(0), 42);
    }

    #[test]
    fn atomic_combine_applies_user_op() {
        let mut c = ctx();
        let buf = DeviceBuffer::from_slice(&[10i64]);
        assert_eq!(c.atomic_combine(&buf, 0, 7, i64::max), 10);
        assert_eq!(buf.get(0), 10);
        assert_eq!(c.atomic_combine(&buf, 0, 42, i64::max), 10);
        assert_eq!(buf.get(0), 42);
        assert_eq!(c.counters().atomics, 2);
    }

    #[test]
    fn charge_accumulates() {
        let mut c = ctx();
        c.charge(10);
        c.charge(5);
        assert_eq!(c.counters().cycles, 15);
    }

    #[test]
    fn interleaved_buffers_keep_sequential_billing() {
        // Five buffers scanned in lockstep: by pigeonhole at least two of
        // any five distinct ids collide mod 4, so the old direct-mapped
        // tracker evicted a live run on every round and billed full
        // transactions. Fully-associative slots must bill one transaction
        // per buffer (the run start) and element size for the rest,
        // whatever the ids are.
        let mut c = ctx();
        let bufs: Vec<DeviceBuffer<u32>> =
            (0..5).map(|_| DeviceBuffer::<u32>::zeroed(16)).collect();
        let rounds = 10usize;
        for i in 0..rounds {
            for b in &bufs {
                let _ = c.read(b, i);
            }
        }
        assert_eq!(
            c.counters().bytes,
            5 * 32 + 5 * (rounds as u64 - 1) * 4,
            "interleaved sequential scans must stay coalesced"
        );
    }

    #[test]
    fn warp_scoped_tracker_coalesces_across_lanes() {
        // Lane i reads buf[i]: the classic coalesced pattern. Reusing one
        // context across the lanes keeps the warp-scoped tracker alive,
        // so the warp bills one transaction for lane 0 and element-size
        // for the rest.
        let costs = intern_costs(&DeviceConfig::k40c());
        let buf = DeviceBuffer::<u32>::zeroed(32);
        let mut c = ThreadCtx::new(0, 32, costs);
        let mut total_bytes = 0;
        for lane in 0..32usize {
            c.begin_lane(lane);
            let _ = c.read(&buf, lane);
            total_bytes += c.counters().bytes;
        }
        assert_eq!(total_bytes, 32 + 31 * 4);
    }

    #[test]
    fn begin_lane_resets_counters_and_ids() {
        let mut c = ctx();
        let buf = DeviceBuffer::<u32>::zeroed(8);
        let _ = c.read(&buf, 0);
        assert_eq!(c.counters().accesses, 1);
        c.begin_lane(64);
        assert_eq!(c.counters(), ThreadCounters::default());
        assert_eq!(c.tid(), 64);
        assert_eq!(c.lane(), 0);
        assert_eq!(c.warp(), 2);
    }

    #[test]
    fn seq_accesses_bill_element_size_without_tracker() {
        let mut c = ctx();
        let buf = DeviceBuffer::<u32>::zeroed(64);
        // Scattered indices, but billed as sequential: the caller vouches.
        let _ = c.read_seq(&buf, 50);
        c.write_seq(&buf, 3, 7);
        assert_eq!(buf.get(3), 7);
        let k = c.counters();
        assert_eq!(k.accesses, 2);
        assert_eq!(k.cycles, 2 * 4);
        assert_eq!(k.bytes, 2 * 4);
    }

    #[test]
    fn seq_run_bills_like_per_element_seq_reads() {
        let buf = DeviceBuffer::from_slice(&[5u32, 6, 7, 8, 9]);
        let mut bulk = ctx();
        let run = bulk.read_seq_run(&buf, 1, 4);
        assert_eq!(run.len(), 3);
        assert_eq!(run.get(0), 6);
        assert_eq!(run.iter().collect::<Vec<_>>(), vec![6, 7, 8]);
        assert_eq!(run.into_iter().collect::<Vec<_>>(), vec![6, 7, 8]);

        let mut scalar = ctx();
        for i in 1..4 {
            let _ = scalar.read_seq(&buf, i);
        }
        assert_eq!(bulk.counters(), scalar.counters());
    }

    #[test]
    fn empty_seq_run_is_free() {
        let mut c = ctx();
        let buf = DeviceBuffer::<u32>::zeroed(4);
        let run = c.read_seq_run(&buf, 2, 2);
        assert!(run.is_empty());
        assert_eq!(c.counters(), ThreadCounters::default());
    }
}
