//! Property-based tests for the virtual GPU.

use proptest::prelude::*;

use crate::buffer::DeviceBuffer;
use crate::config::DeviceConfig;
use crate::device::Device;
use crate::primitives::{
    compact, compact_indices, compact_indices_fused, compact_values, compact_values_fused,
    exclusive_scan, gather, radix_sort, reduce, segmented_reduce,
};

fn dev() -> Device {
    Device::new(DeviceConfig::test_tiny())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduce_sum_matches_host(data in proptest::collection::vec(0u32..1000, 0..300)) {
        let d = dev();
        let buf = DeviceBuffer::from_slice(&data);
        let got = reduce(&d, "sum", &buf, 0u32, |a, b| a.wrapping_add(b));
        let want = data.iter().fold(0u32, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reduce_max_matches_host(data in proptest::collection::vec(any::<i32>(), 1..300)) {
        let d = dev();
        let buf = DeviceBuffer::from_slice(&data);
        let got = reduce(&d, "max", &buf, i32::MIN, i32::max);
        prop_assert_eq!(got, *data.iter().max().unwrap());
    }

    #[test]
    fn scan_matches_host(data in proptest::collection::vec(0u32..100, 0..300)) {
        let d = dev();
        let buf = DeviceBuffer::from_slice(&data);
        let (offsets, total) = exclusive_scan(&d, "scan", &buf);
        let got = offsets.to_vec();
        let mut acc = 0u64;
        for i in 0..data.len() {
            prop_assert_eq!(got[i] as u64, acc);
            acc += data[i] as u64;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn compact_matches_host_filter(
        pairs in proptest::collection::vec((any::<u32>(), any::<bool>()), 0..300)
    ) {
        let d = dev();
        let values: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let flags: Vec<u8> = pairs.iter().map(|p| p.1 as u8).collect();
        let out = compact(
            &d,
            "f",
            &DeviceBuffer::from_slice(&values),
            &DeviceBuffer::from_slice(&flags),
        );
        let want: Vec<u32> = pairs.iter().filter(|p| p.1).map(|p| p.0).collect();
        prop_assert_eq!(out.to_vec(), want);
    }

    #[test]
    fn segmented_reduce_matches_host(
        seg_lens in proptest::collection::vec(0usize..20, 1..40),
        seed in any::<u64>(),
    ) {
        let d = dev();
        let mut offsets = vec![0usize];
        for &l in &seg_lens {
            offsets.push(offsets.last().unwrap() + l);
        }
        let n = *offsets.last().unwrap();
        let values: Vec<u32> =
            (0..n).map(|i| crate::rng::uniform_u32(seed, i as u32) % 1000).collect();
        let buf = DeviceBuffer::from_slice(&values);
        let got = segmented_reduce(&d, "seg", &buf, &offsets, 0u32, u32::max);
        let want: Vec<u32> = offsets
            .windows(2)
            .map(|w| values[w[0]..w[1]].iter().copied().max().unwrap_or(0))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn radix_sort_matches_std_sort(data in proptest::collection::vec(any::<u32>(), 0..400)) {
        let d = dev();
        let buf = DeviceBuffer::from_slice(&data);
        let got = radix_sort(&d, "sort", &buf).to_vec();
        let mut want = data.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn gather_matches_indexing(
        values in proptest::collection::vec(any::<u32>(), 1..100),
        seed in any::<u64>(),
    ) {
        let d = dev();
        let n = values.len();
        let indices: Vec<u32> =
            (0..50).map(|i| crate::rng::uniform_below(seed, i, n as u32)).collect();
        let out = gather(
            &d,
            "g",
            &DeviceBuffer::from_slice(&values),
            &DeviceBuffer::from_slice(&indices),
        );
        let want: Vec<u32> = indices.iter().map(|&i| values[i as usize]).collect();
        prop_assert_eq!(out.to_vec(), want);
    }

    #[test]
    fn launch_writes_every_index(n in 0usize..2000) {
        let d = dev();
        let out = DeviceBuffer::<u32>::zeroed(n);
        d.launch("fill", n, |t| {
            let tid = t.tid();
            t.write(&out, tid, 1);
        });
        prop_assert!(out.to_vec().iter().all(|&x| x == 1));
    }

    #[test]
    fn fused_compaction_equals_two_kernel_compaction(
        keep in proptest::collection::vec(any::<bool>(), 0..400)
    ) {
        // `compact_indices_fused` must honor the same sorted-permutation
        // contract as the two-kernel `compact_indices`: identical
        // survivor sets, identical (ascending) order — only launches
        // differ (1 vs up to 3).
        let flags_vec: Vec<u8> = keep.iter().map(|&k| k as u8).collect();
        let n = keep.len();
        let d_fused = dev();
        let flags = DeviceBuffer::from_slice(&flags_vec);
        let fused = compact_indices_fused(&d_fused, "cf", n, |t, i| t.read(&flags, i) != 0);
        let d_plain = dev();
        let plain = compact_indices(&d_plain, "ci", n, |t, i| t.read(&flags, i) != 0);
        prop_assert_eq!(fused.to_vec(), plain.to_vec());
        prop_assert!(d_fused.profile().launches <= d_plain.profile().launches);
    }

    #[test]
    fn fused_values_compaction_equals_two_kernel(
        values in proptest::collection::vec(0u32..50, 0..300)
    ) {
        let d_fused = dev();
        let vals = DeviceBuffer::from_slice(&values);
        let fused = compact_values_fused(&d_fused, "cvf", &vals, |_, v| v % 3 != 0);
        let d_plain = dev();
        let plain = compact_values(&d_plain, "cv", &vals, |_, v| v % 3 != 0);
        prop_assert_eq!(fused.to_vec(), plain.to_vec());
    }

    #[test]
    fn replay_work_terms_match_uncaptured(
        extents in proptest::collection::vec(0usize..600, 1..8)
    ) {
        // Cost-model faithfulness of graph replay: a replayed pipeline
        // bills exactly the same per-kernel work as issuing the same
        // kernels uncaptured; the clocks differ by precisely
        // (k - 1) x launch_overhead_cycles, the fixed overhead the graph
        // amortizes. (A zero-extent kernel is pure overhead, so it still
        // counts toward k.)
        let cfg = DeviceConfig::test_tiny();
        let body = |d: &Device, bufs: &[DeviceBuffer<u32>]| {
            for (j, buf) in bufs.iter().enumerate() {
                d.launch("step", buf.len(), |t| {
                    let i = t.tid();
                    let v = t.read(buf, i);
                    t.write(buf, i, v.wrapping_add(1));
                    if i % 5 == j % 5 {
                        t.charge(9);
                    }
                });
            }
        };
        let mk_bufs = || -> Vec<DeviceBuffer<u32>> {
            extents.iter().map(|&n| DeviceBuffer::zeroed(n)).collect()
        };
        let (plain_cycles, plain_prof) = {
            let d = Device::new(cfg);
            let bufs = mk_bufs();
            body(&d, &bufs);
            (d.elapsed_cycles(), d.profile())
        };
        let (replay_cycles, replay_prof) = {
            let d = Device::new(cfg);
            let bufs = mk_bufs();
            let graph = d.capture("pipeline", || body(&d, &bufs));
            d.replay(&graph);
            (d.elapsed_cycles(), d.profile())
        };
        let k = extents.len() as f64;
        let overhead = cfg.launch_overhead_cycles as f64;
        prop_assert_eq!(plain_cycles - replay_cycles, (k - 1.0) * overhead);
        prop_assert_eq!(plain_prof.thread_executions, replay_prof.thread_executions);
        prop_assert_eq!(
            replay_prof.launch_overhead_saved_cycles,
            (k - 1.0) * overhead
        );
        // Per-kernel non-overhead terms are identical.
        let strip = |p: &crate::profiler::ProfileReport| {
            p.by_kernel["step"].total_cycles - p.by_kernel["step"].launches as f64 * overhead
        };
        let plain_work = strip(&plain_prof);
        let replay_work = replay_prof.by_kernel["step"].total_cycles;
        prop_assert_eq!(plain_work, replay_work);
    }

    #[test]
    fn model_clock_is_deterministic(n in 1usize..500) {
        let run = || {
            let d = dev();
            let buf = DeviceBuffer::<u32>::zeroed(n);
            d.launch("touch", n, |t| {
                let tid = t.tid();
                let v = t.read(&buf, tid);
                t.write(&buf, tid, v + 1);
            });
            d.elapsed_cycles()
        };
        prop_assert_eq!(run(), run());
    }
}
