//! Property-based tests for the virtual GPU.

use proptest::prelude::*;

use crate::buffer::DeviceBuffer;
use crate::config::DeviceConfig;
use crate::device::Device;
use crate::primitives::{compact, exclusive_scan, gather, radix_sort, reduce, segmented_reduce};

fn dev() -> Device {
    Device::new(DeviceConfig::test_tiny())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduce_sum_matches_host(data in proptest::collection::vec(0u32..1000, 0..300)) {
        let d = dev();
        let buf = DeviceBuffer::from_slice(&data);
        let got = reduce(&d, "sum", &buf, 0u32, |a, b| a.wrapping_add(b));
        let want = data.iter().fold(0u32, |a, &b| a.wrapping_add(b));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn reduce_max_matches_host(data in proptest::collection::vec(any::<i32>(), 1..300)) {
        let d = dev();
        let buf = DeviceBuffer::from_slice(&data);
        let got = reduce(&d, "max", &buf, i32::MIN, i32::max);
        prop_assert_eq!(got, *data.iter().max().unwrap());
    }

    #[test]
    fn scan_matches_host(data in proptest::collection::vec(0u32..100, 0..300)) {
        let d = dev();
        let buf = DeviceBuffer::from_slice(&data);
        let (offsets, total) = exclusive_scan(&d, "scan", &buf);
        let got = offsets.to_vec();
        let mut acc = 0u64;
        for i in 0..data.len() {
            prop_assert_eq!(got[i] as u64, acc);
            acc += data[i] as u64;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn compact_matches_host_filter(
        pairs in proptest::collection::vec((any::<u32>(), any::<bool>()), 0..300)
    ) {
        let d = dev();
        let values: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let flags: Vec<u8> = pairs.iter().map(|p| p.1 as u8).collect();
        let out = compact(
            &d,
            "f",
            &DeviceBuffer::from_slice(&values),
            &DeviceBuffer::from_slice(&flags),
        );
        let want: Vec<u32> = pairs.iter().filter(|p| p.1).map(|p| p.0).collect();
        prop_assert_eq!(out.to_vec(), want);
    }

    #[test]
    fn segmented_reduce_matches_host(
        seg_lens in proptest::collection::vec(0usize..20, 1..40),
        seed in any::<u64>(),
    ) {
        let d = dev();
        let mut offsets = vec![0usize];
        for &l in &seg_lens {
            offsets.push(offsets.last().unwrap() + l);
        }
        let n = *offsets.last().unwrap();
        let values: Vec<u32> =
            (0..n).map(|i| crate::rng::uniform_u32(seed, i as u32) % 1000).collect();
        let buf = DeviceBuffer::from_slice(&values);
        let got = segmented_reduce(&d, "seg", &buf, &offsets, 0u32, u32::max);
        let want: Vec<u32> = offsets
            .windows(2)
            .map(|w| values[w[0]..w[1]].iter().copied().max().unwrap_or(0))
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn radix_sort_matches_std_sort(data in proptest::collection::vec(any::<u32>(), 0..400)) {
        let d = dev();
        let buf = DeviceBuffer::from_slice(&data);
        let got = radix_sort(&d, "sort", &buf).to_vec();
        let mut want = data.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn gather_matches_indexing(
        values in proptest::collection::vec(any::<u32>(), 1..100),
        seed in any::<u64>(),
    ) {
        let d = dev();
        let n = values.len();
        let indices: Vec<u32> =
            (0..50).map(|i| crate::rng::uniform_below(seed, i, n as u32)).collect();
        let out = gather(
            &d,
            "g",
            &DeviceBuffer::from_slice(&values),
            &DeviceBuffer::from_slice(&indices),
        );
        let want: Vec<u32> = indices.iter().map(|&i| values[i as usize]).collect();
        prop_assert_eq!(out.to_vec(), want);
    }

    #[test]
    fn launch_writes_every_index(n in 0usize..2000) {
        let d = dev();
        let out = DeviceBuffer::<u32>::zeroed(n);
        d.launch("fill", n, |t| {
            let tid = t.tid();
            t.write(&out, tid, 1);
        });
        prop_assert!(out.to_vec().iter().all(|&x| x == 1));
    }

    #[test]
    fn model_clock_is_deterministic(n in 1usize..500) {
        let run = || {
            let d = dev();
            let buf = DeviceBuffer::<u32>::zeroed(n);
            d.launch("touch", n, |t| {
                let tid = t.tid();
                let v = t.read(&buf, tid);
                t.write(&buf, tid, v + 1);
            });
            d.elapsed_cycles()
        };
        prop_assert_eq!(run(), run());
    }
}
