//! Scalar element types storable in device buffers.
//!
//! Device buffers are shared mutably between simulated threads, so every
//! element is backed by an atomic cell accessed with `Relaxed` ordering —
//! on x86 these compile to plain loads and stores, and the semantics match
//! the GPU's: concurrent unordered access to global memory, with explicit
//! atomics available where algorithms need read-modify-write.

use std::sync::atomic::{AtomicI32, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Element type usable in a [`crate::DeviceBuffer`].
pub trait Scalar: Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static {
    /// The atomic cell backing one element. (`'static` so the buffer
    /// pool can shelve storage keyed by `TypeId`.)
    type Atomic: Send + Sync + 'static;

    /// Size billed by the memory model.
    const BYTES: u64;

    fn new_cell(v: Self) -> Self::Atomic;
    fn load(cell: &Self::Atomic) -> Self;
    fn store(cell: &Self::Atomic, v: Self);
    /// Compare-and-swap; returns the previous value on success as `Ok`,
    /// the observed value on failure as `Err`.
    fn cas(cell: &Self::Atomic, current: Self, new: Self) -> Result<Self, Self>;

    /// Atomic read-modify-write built on a CAS loop; returns the previous
    /// value. Used to implement `atomicAdd`/`atomicMin`/`atomicMax`.
    fn rmw(cell: &Self::Atomic, f: impl Fn(Self) -> Self) -> Self {
        let mut cur = Self::load(cell);
        loop {
            match Self::cas(cell, cur, f(cur)) {
                Ok(prev) => return prev,
                Err(seen) => cur = seen,
            }
        }
    }
}

macro_rules! int_scalar {
    ($t:ty, $atomic:ty, $bytes:expr) => {
        impl Scalar for $t {
            type Atomic = $atomic;
            const BYTES: u64 = $bytes;

            #[inline]
            fn new_cell(v: Self) -> Self::Atomic {
                <$atomic>::new(v)
            }
            #[inline]
            fn load(cell: &Self::Atomic) -> Self {
                cell.load(Ordering::Relaxed)
            }
            #[inline]
            fn store(cell: &Self::Atomic, v: Self) {
                cell.store(v, Ordering::Relaxed)
            }
            #[inline]
            fn cas(cell: &Self::Atomic, current: Self, new: Self) -> Result<Self, Self> {
                cell.compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
            }
        }
    };
}

int_scalar!(u8, AtomicU8, 1);
int_scalar!(u32, AtomicU32, 4);
int_scalar!(i32, AtomicI32, 4);
int_scalar!(u64, AtomicU64, 8);
int_scalar!(i64, AtomicI64, 8);

impl Scalar for f32 {
    type Atomic = AtomicU32;
    const BYTES: u64 = 4;

    #[inline]
    fn new_cell(v: Self) -> Self::Atomic {
        AtomicU32::new(v.to_bits())
    }
    #[inline]
    fn load(cell: &Self::Atomic) -> Self {
        f32::from_bits(cell.load(Ordering::Relaxed))
    }
    #[inline]
    fn store(cell: &Self::Atomic, v: Self) {
        cell.store(v.to_bits(), Ordering::Relaxed)
    }
    #[inline]
    fn cas(cell: &Self::Atomic, current: Self, new: Self) -> Result<Self, Self> {
        cell.compare_exchange(
            current.to_bits(),
            new.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        )
        .map(f32::from_bits)
        .map_err(f32::from_bits)
    }
}

impl Scalar for f64 {
    type Atomic = AtomicU64;
    const BYTES: u64 = 8;

    #[inline]
    fn new_cell(v: Self) -> Self::Atomic {
        AtomicU64::new(v.to_bits())
    }
    #[inline]
    fn load(cell: &Self::Atomic) -> Self {
        f64::from_bits(cell.load(Ordering::Relaxed))
    }
    #[inline]
    fn store(cell: &Self::Atomic, v: Self) {
        cell.store(v.to_bits(), Ordering::Relaxed)
    }
    #[inline]
    fn cas(cell: &Self::Atomic, current: Self, new: Self) -> Result<Self, Self> {
        cell.compare_exchange(
            current.to_bits(),
            new.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        )
        .map(f64::from_bits)
        .map_err(f64::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip_ints() {
        let c = u32::new_cell(7);
        assert_eq!(u32::load(&c), 7);
        u32::store(&c, 42);
        assert_eq!(u32::load(&c), 42);
    }

    #[test]
    fn load_store_roundtrip_floats() {
        let c = f32::new_cell(1.5);
        assert_eq!(f32::load(&c), 1.5);
        f32::store(&c, -0.25);
        assert_eq!(f32::load(&c), -0.25);
        let d = f64::new_cell(std::f64::consts::PI);
        assert_eq!(f64::load(&d), std::f64::consts::PI);
    }

    #[test]
    fn cas_success_and_failure() {
        let c = i32::new_cell(5);
        assert_eq!(i32::cas(&c, 5, 9), Ok(5));
        assert_eq!(i32::load(&c), 9);
        assert_eq!(i32::cas(&c, 5, 11), Err(9));
        assert_eq!(i32::load(&c), 9);
    }

    #[test]
    fn rmw_applies_function() {
        let c = u64::new_cell(10);
        let prev = u64::rmw(&c, |x| x * 3);
        assert_eq!(prev, 10);
        assert_eq!(u64::load(&c), 30);
    }

    #[test]
    fn rmw_concurrent_additions_all_land() {
        use std::sync::Arc;
        let c = Arc::new(u32::new_cell(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        u32::rmw(&c, |x| x + 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(u32::load(&c), 8000);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(u8::BYTES, 1);
        assert_eq!(u32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
    }
}
