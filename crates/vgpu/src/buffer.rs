//! Device global-memory buffers.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::pool;
use crate::scalar::Scalar;

static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

fn next_id() -> u64 {
    NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed)
}

/// A linear array in simulated device global memory.
///
/// Constructing a buffer does not bill transfer time; uploads through
/// [`crate::Device::upload`] and downloads through
/// [`crate::Device::download`] do (mirroring `cudaMemcpy`). Host-side
/// accessors (`get`/`set`/`to_vec`) exist for test setup and inspection
/// and are unmetered.
pub struct DeviceBuffer<T: Scalar> {
    id: u64,
    cells: Box<[T::Atomic]>,
}

impl<T: Scalar> DeviceBuffer<T> {
    /// A buffer of `len` default-valued elements (like `cudaMalloc` +
    /// `cudaMemset(0)`).
    pub fn zeroed(len: usize) -> Self {
        Self::filled(len, T::default())
    }

    /// A buffer with every element set to `v`.
    ///
    /// When the calling thread has the buffer pool enabled (see
    /// [`crate::pool`]), same-shaped storage released by an earlier drop
    /// is reused instead of reallocated; reuse re-initializes every cell.
    pub fn filled(len: usize, v: T) -> Self {
        if let Some(cells) = pool::claim::<T::Atomic>(len) {
            for c in cells.iter() {
                T::store(c, v);
            }
            return DeviceBuffer {
                id: next_id(),
                cells,
            };
        }
        DeviceBuffer {
            id: next_id(),
            cells: (0..len).map(|_| T::new_cell(v)).collect(),
        }
    }

    /// A buffer initialized from host data (unmetered; see
    /// [`crate::Device::upload`] for the metered path). Pool-aware like
    /// [`DeviceBuffer::filled`].
    pub fn from_slice(data: &[T]) -> Self {
        if let Some(cells) = pool::claim::<T::Atomic>(data.len()) {
            for (c, &v) in cells.iter().zip(data) {
                T::store(c, v);
            }
            return DeviceBuffer {
                id: next_id(),
                cells,
            };
        }
        DeviceBuffer {
            id: next_id(),
            cells: data.iter().map(|&v| T::new_cell(v)).collect(),
        }
    }

    /// Unique id used by the access-pattern tracker.
    #[inline]
    pub(crate) fn id(&self) -> u64 {
        self.id
    }

    #[inline]
    pub(crate) fn cell(&self, i: usize) -> &T::Atomic {
        &self.cells[i]
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Host-side read (unmetered).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        T::load(&self.cells[i])
    }

    /// Host-side write (unmetered).
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        T::store(&self.cells[i], v)
    }

    /// Host-side snapshot (unmetered).
    pub fn to_vec(&self) -> Vec<T> {
        self.cells.iter().map(|c| T::load(c)).collect()
    }

    /// Host-side bulk fill (unmetered).
    pub fn fill(&self, v: T) {
        for c in self.cells.iter() {
            T::store(c, v);
        }
    }

    /// Host-side bulk copy-in (unmetered). Lengths must match.
    pub fn copy_from_slice(&self, data: &[T]) {
        assert_eq!(data.len(), self.len(), "length mismatch");
        for (c, &v) in self.cells.iter().zip(data) {
            T::store(c, v);
        }
    }

    /// Host-side bulk copy-in at an offset (unmetered). The data must
    /// fit: `offset + data.len() <= len`.
    pub fn copy_from_slice_at(&self, offset: usize, data: &[T]) {
        assert!(
            offset + data.len() <= self.len(),
            "copy_from_slice_at out of range: {} + {} > {}",
            offset,
            data.len(),
            self.len()
        );
        for (c, &v) in self.cells[offset..offset + data.len()].iter().zip(data) {
            T::store(c, v);
        }
    }

    /// Total bytes of the buffer as billed by transfers.
    pub fn size_bytes(&self) -> u64 {
        self.len() as u64 * T::BYTES
    }

    /// Bounds-checks `[start, end)` once and returns the raw cell range
    /// for a pre-billed sequential run (see
    /// [`crate::ThreadCtx::read_seq_run`]).
    #[inline]
    pub(crate) fn cells_range(&self, start: usize, end: usize) -> &[T::Atomic] {
        &self.cells[start..end]
    }
}

/// A pre-billed sequential window over a [`DeviceBuffer`], returned by
/// [`crate::ThreadCtx::read_seq_run`]. The whole run's memory traffic is
/// metered up front in O(1), so element reads here are raw atomic loads
/// with no per-access bounds check or bookkeeping — the fast path for CSR
/// inner loops that stream a neighbor list.
///
/// Borrows the buffer, not the thread context: the context stays usable
/// inside `for u in run { ... }` bodies.
pub struct SeqRun<'a, T: Scalar> {
    cells: &'a [T::Atomic],
    _elem: std::marker::PhantomData<T>,
}

impl<'a, T: Scalar> SeqRun<'a, T> {
    #[inline]
    pub(crate) fn new(cells: &'a [T::Atomic]) -> Self {
        SeqRun {
            cells,
            _elem: std::marker::PhantomData,
        }
    }

    /// Number of elements in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the run is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Element at offset `i` *within the run* (0-based, unmetered — the
    /// run was billed at creation).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        T::load(&self.cells[i])
    }

    /// Iterator over the run's elements.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = T> + 'a {
        let cells = self.cells;
        cells.iter().map(T::load)
    }
}

impl<'a, T: Scalar> IntoIterator for SeqRun<'a, T> {
    type Item = T;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, T::Atomic>, fn(&T::Atomic) -> T>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter().map(T::load as fn(&T::Atomic) -> T)
    }
}

impl<'a, T: Scalar> IntoIterator for &SeqRun<'a, T> {
    type Item = T;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, T::Atomic>, fn(&T::Atomic) -> T>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter().map(T::load as fn(&T::Atomic) -> T)
    }
}

impl<T: Scalar> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        // Shelve the storage on the thread's pool (no-op when disabled).
        pool::offer(std::mem::take(&mut self.cells));
    }
}

impl<T: Scalar> Clone for DeviceBuffer<T> {
    fn clone(&self) -> Self {
        Self::from_slice(&self.to_vec())
    }
}

impl<T: Scalar> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeviceBuffer(id={}, len={})", self.id, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_defaults() {
        let b = DeviceBuffer::<u32>::zeroed(4);
        assert_eq!(b.to_vec(), vec![0; 4]);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
    }

    #[test]
    fn filled_and_fill() {
        let b = DeviceBuffer::<i32>::filled(3, -7);
        assert_eq!(b.to_vec(), vec![-7; 3]);
        b.fill(9);
        assert_eq!(b.to_vec(), vec![9; 3]);
    }

    #[test]
    fn from_slice_roundtrip() {
        let data = vec![1.0f32, 2.5, -3.0];
        let b = DeviceBuffer::from_slice(&data);
        assert_eq!(b.to_vec(), data);
        assert_eq!(b.get(1), 2.5);
    }

    #[test]
    fn set_get() {
        let b = DeviceBuffer::<u64>::zeroed(2);
        b.set(1, 99);
        assert_eq!(b.get(1), 99);
        assert_eq!(b.get(0), 0);
    }

    #[test]
    fn ids_are_unique() {
        let a = DeviceBuffer::<u32>::zeroed(1);
        let b = DeviceBuffer::<u32>::zeroed(1);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn size_bytes() {
        assert_eq!(DeviceBuffer::<u32>::zeroed(10).size_bytes(), 40);
        assert_eq!(DeviceBuffer::<f64>::zeroed(10).size_bytes(), 80);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_slice_length_checked() {
        DeviceBuffer::<u32>::zeroed(2).copy_from_slice(&[1, 2, 3]);
    }

    #[test]
    fn clone_copies_contents() {
        let a = DeviceBuffer::from_slice(&[1u32, 2, 3]);
        let b = a.clone();
        a.set(0, 100);
        assert_eq!(b.get(0), 1);
    }
}
