//! The analytic kernel-time model.

use crate::config::DeviceConfig;
use crate::thread::ThreadCounters;

/// Aggregated activity of one kernel launch, reduced over all warps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaunchStats {
    /// Number of threads launched.
    pub threads: u64,
    /// Number of warps (including partially-filled ones).
    pub warps: u64,
    /// Σ over warps of (max thread cycles in warp) — the divergence-aware
    /// total issue work.
    pub total_warp_cycles: u64,
    /// Maximum warp cycles — the critical path.
    pub max_warp_cycles: u64,
    /// Σ thread cycles (for utilization reporting; the compute term uses
    /// warp cycles).
    pub total_thread_cycles: u64,
    /// Total DRAM bytes billed.
    pub bytes: u64,
    /// Total atomic operations.
    pub atomics: u64,
    /// Total global accesses.
    pub accesses: u64,
}

impl LaunchStats {
    /// Folds a fully-executed warp (already reduced to max/total thread
    /// counters) into the launch totals.
    pub fn add_warp(&mut self, warp_max: &ThreadCounters, warp_sum: &ThreadCounters, lanes: u64) {
        self.threads += lanes;
        self.warps += 1;
        self.total_warp_cycles += warp_max.cycles;
        self.max_warp_cycles = self.max_warp_cycles.max(warp_max.cycles);
        self.total_thread_cycles += warp_sum.cycles;
        self.bytes += warp_sum.bytes;
        self.atomics += warp_sum.atomics;
        self.accesses += warp_sum.accesses;
    }

    /// Merges two partial launch aggregations (rayon reduce step).
    pub fn merge(mut self, other: LaunchStats) -> LaunchStats {
        self.threads += other.threads;
        self.warps += other.warps;
        self.total_warp_cycles += other.total_warp_cycles;
        self.max_warp_cycles = self.max_warp_cycles.max(other.max_warp_cycles);
        self.total_thread_cycles += other.total_thread_cycles;
        self.bytes += other.bytes;
        self.atomics += other.atomics;
        self.accesses += other.accesses;
        self
    }
}

/// Which resource a kernel's modeled duration is bound by.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BoundBy {
    /// Fixed launch overhead exceeds every resource term (tiny kernels).
    #[default]
    Overhead,
    /// Issue-width limited (divergence-weighted warp cycles).
    Compute,
    /// DRAM bandwidth limited.
    Memory,
    /// Atomic throughput limited.
    Atomics,
    /// A single long warp (extreme load imbalance).
    CriticalPath,
}

impl std::fmt::Display for BoundBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BoundBy::Overhead => "overhead",
            BoundBy::Compute => "compute",
            BoundBy::Memory => "memory",
            BoundBy::Atomics => "atomics",
            BoundBy::CriticalPath => "critical-path",
        };
        f.write_str(s)
    }
}

/// Breakdown of a kernel's modeled duration, in cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelCost {
    pub launch_overhead: f64,
    pub compute_term: f64,
    pub memory_term: f64,
    pub atomic_term: f64,
    pub critical_path: f64,
    /// Final modeled cycles: overhead + max of the four resource terms.
    pub total_cycles: f64,
}

impl KernelCost {
    /// The binding resource of this launch.
    pub fn bound_by(&self) -> BoundBy {
        let resource = self
            .compute_term
            .max(self.memory_term)
            .max(self.atomic_term)
            .max(self.critical_path);
        if self.launch_overhead >= resource {
            BoundBy::Overhead
        } else if resource == self.memory_term {
            BoundBy::Memory
        } else if resource == self.atomic_term {
            BoundBy::Atomics
        } else if resource == self.critical_path && self.critical_path > self.compute_term {
            BoundBy::CriticalPath
        } else {
            BoundBy::Compute
        }
    }
}

/// Computes a kernel's modeled cost from its aggregated stats.
///
/// `total = launch_overhead + max(compute, memory, atomic, critical_path)`
///
/// * compute: total divergence-aware warp cycles over device issue width;
/// * memory: total billed bytes over DRAM bytes/cycle;
/// * atomic: total atomics over device atomic throughput;
/// * critical path: the slowest single warp (a kernel cannot retire
///   before its longest warp does).
pub fn kernel_cost(cfg: &DeviceConfig, stats: &LaunchStats) -> KernelCost {
    let compute = stats.total_warp_cycles as f64 / cfg.warp_throughput as f64;
    let memory = stats.bytes as f64 / cfg.dram_bytes_per_cycle;
    let atomic = stats.atomics as f64 / cfg.atomic_throughput;
    let critical = stats.max_warp_cycles as f64;
    let overhead = cfg.launch_overhead_cycles as f64;
    let total = overhead + compute.max(memory).max(atomic).max(critical);
    KernelCost {
        launch_overhead: overhead,
        compute_term: compute,
        memory_term: memory,
        atomic_term: atomic,
        critical_path: critical,
        total_cycles: total,
    }
}

/// Modeled cost in cycles of a host↔device copy of `bytes`.
pub fn memcpy_cost(cfg: &DeviceConfig, bytes: u64) -> f64 {
    cfg.memcpy_latency_cycles as f64 + bytes as f64 / cfg.pcie_bytes_per_cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(total_warp: u64, max_warp: u64, bytes: u64, atomics: u64) -> LaunchStats {
        LaunchStats {
            threads: 0,
            warps: 1,
            total_warp_cycles: total_warp,
            max_warp_cycles: max_warp,
            total_thread_cycles: total_warp,
            bytes,
            atomics,
            accesses: 0,
        }
    }

    #[test]
    fn empty_kernel_costs_launch_overhead() {
        let cfg = DeviceConfig::test_tiny();
        let c = kernel_cost(&cfg, &LaunchStats::default());
        assert_eq!(c.total_cycles, cfg.launch_overhead_cycles as f64);
    }

    #[test]
    fn compute_bound_kernel() {
        let cfg = DeviceConfig::test_tiny(); // warp_throughput = 2
        let c = kernel_cost(&cfg, &stats(10_000, 10, 0, 0));
        assert_eq!(c.compute_term, 5_000.0);
        assert_eq!(c.total_cycles, 100.0 + 5_000.0);
    }

    #[test]
    fn memory_bound_kernel() {
        let cfg = DeviceConfig::test_tiny(); // 64 B/cycle
        let c = kernel_cost(&cfg, &stats(10, 10, 640_000, 0));
        assert_eq!(c.memory_term, 10_000.0);
        assert!(c.total_cycles > c.compute_term + 100.0);
    }

    #[test]
    fn atomic_bound_kernel() {
        let cfg = DeviceConfig::test_tiny(); // 4 atomics/cycle
        let c = kernel_cost(&cfg, &stats(10, 10, 0, 40_000));
        assert_eq!(c.atomic_term, 10_000.0);
        assert_eq!(c.total_cycles, 100.0 + 10_000.0);
    }

    #[test]
    fn critical_path_dominates_single_long_warp() {
        let cfg = DeviceConfig::test_tiny();
        // One warp did 1M cycles; total work small relative to throughput.
        let c = kernel_cost(&cfg, &stats(1_000_000, 1_000_000, 0, 0));
        assert!(c.critical_path >= c.compute_term);
        assert_eq!(c.total_cycles, 100.0 + 1_000_000.0);
    }

    #[test]
    fn divergence_increases_cost() {
        let cfg = DeviceConfig::k40c();
        // Balanced: 32 threads x 100 cycles -> warp max 100.
        let balanced = stats(100, 100, 0, 0);
        // Imbalanced: one thread 3200, rest idle -> warp max 3200.
        let imbalanced = stats(3200, 3200, 0, 0);
        assert!(
            kernel_cost(&cfg, &imbalanced).total_cycles > kernel_cost(&cfg, &balanced).total_cycles
        );
    }

    #[test]
    fn merge_combines_and_maxes() {
        let a = stats(10, 10, 100, 1);
        let b = stats(20, 15, 50, 2);
        let m = a.merge(b);
        assert_eq!(m.total_warp_cycles, 30);
        assert_eq!(m.max_warp_cycles, 15);
        assert_eq!(m.bytes, 150);
        assert_eq!(m.atomics, 3);
        assert_eq!(m.warps, 2);
    }

    #[test]
    fn add_warp_accumulates() {
        let mut s = LaunchStats::default();
        let max = ThreadCounters {
            cycles: 50,
            bytes: 0,
            atomics: 0,
            accesses: 0,
        };
        let sum = ThreadCounters {
            cycles: 120,
            bytes: 256,
            atomics: 3,
            accesses: 8,
        };
        s.add_warp(&max, &sum, 32);
        s.add_warp(&max, &sum, 16);
        assert_eq!(s.threads, 48);
        assert_eq!(s.warps, 2);
        assert_eq!(s.total_warp_cycles, 100);
        assert_eq!(s.max_warp_cycles, 50);
        assert_eq!(s.bytes, 512);
    }

    #[test]
    fn bound_by_classification() {
        let cfg = DeviceConfig::test_tiny();
        assert_eq!(
            kernel_cost(&cfg, &LaunchStats::default()).bound_by(),
            BoundBy::Overhead
        );
        assert_eq!(
            kernel_cost(&cfg, &stats(10_000, 10, 0, 0)).bound_by(),
            BoundBy::Compute
        );
        assert_eq!(
            kernel_cost(&cfg, &stats(10, 10, 640_000, 0)).bound_by(),
            BoundBy::Memory
        );
        assert_eq!(
            kernel_cost(&cfg, &stats(10, 10, 0, 40_000)).bound_by(),
            BoundBy::Atomics
        );
        assert_eq!(
            kernel_cost(&cfg, &stats(1_000_000, 1_000_000, 0, 0)).bound_by(),
            BoundBy::CriticalPath
        );
    }

    #[test]
    fn memcpy_cost_scales_with_bytes() {
        let cfg = DeviceConfig::test_tiny();
        assert_eq!(memcpy_cost(&cfg, 0), 200.0);
        assert_eq!(memcpy_cost(&cfg, 400), 200.0 + 100.0);
    }
}
