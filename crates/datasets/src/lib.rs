//! The Table I dataset registry.
//!
//! The paper evaluates on 12 real-world SuiteSparse matrices plus the
//! DIMACS10 `rgg_n_2_{15..24}_s0` scaling family. The SuiteSparse files
//! are not redistributable here, so each dataset gets a *synthetic
//! stand-in*: a generator from `gc-graph` with parameters chosen to match
//! the structural features the paper's analysis depends on — graph
//! family (FEM shell / stencil mesh / circuit / banded), average degree
//! (the paper's serial-for-loop discussion is entirely about this), and
//! a size that scales relative to the paper's vertex count.
//!
//! Every spec records the numbers exactly as printed in Table I, so the
//! `repro table1` harness can show paper-vs-generated side by side. When
//! a real `.mtx` file is available, `gc_graph::mtx::read_mtx` loads it
//! through the same pipeline instead.

pub mod registry;
pub mod spec;

pub use registry::{
    dataset_by_name, rgg_generate, rgg_name, rgg_scale_of_name, rgg_scales, table1_real_world,
    DEFAULT_SCALE, TEST_SCALE,
};
pub use spec::{DatasetSpec, Family, GraphType};
