//! Dataset specifications and synthesis.

use gc_graph::generators::circuit::CircuitParams;
use gc_graph::generators::{banded_random, circuit, grid2d, grid3d, shell3d, Stencil2d, Stencil3d};
use gc_graph::{Csr, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Table I's type column: `r` real-world / `g` generated, `u` undirected
/// / `d` directed (all converted to undirected before coloring).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphType {
    RealUndirected,
    RealDirected,
    GeneratedUndirected,
}

impl GraphType {
    /// Table I's two-letter code.
    pub fn code(self) -> &'static str {
        match self {
            GraphType::RealUndirected => "ru",
            GraphType::RealDirected => "rd",
            GraphType::GeneratedUndirected => "gu",
        }
    }
}

/// The structural family a stand-in is generated from.
#[derive(Clone, Copy, Debug)]
pub enum Family {
    /// 2-D 9-point stencil mesh (discretized PDE; `parabolic_fem`,
    /// `thermal2`).
    Mesh2d,
    /// 3-D 7-point stencil mesh, optionally with extra random local
    /// couplings per vertex (`ecology2`, `apache2`, `atmosmodd`).
    Mesh3d { extra_per_vertex: f64 },
    /// Thin slab with the dense 27-point stencil (`offshore`,
    /// `FEM_3D_thermal2`).
    Slab27 { layers: usize },
    /// Slab plus random short-range FEM couplings (`af_shell3`).
    Shell {
        layers: usize,
        extra_per_vertex: usize,
    },
    /// Circuit: local wiring + sparse long nets + high-fanout hubs
    /// (`G3_circuit`, `ASIC_320ks`).
    Circuit { local: usize, long_fraction: f64 },
    /// Banded random matrix (`cage13`, `thermomech_dK`).
    Banded {
        bandwidth: usize,
        edges_per_vertex: usize,
    },
}

/// One Table I row.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// SuiteSparse name as printed.
    pub name: &'static str,
    /// Table I vertex count.
    pub paper_vertices: usize,
    /// Table I edge count (as printed; a few rows are internally
    /// inconsistent with the degree column — the generator targets the
    /// degree, which is what the analysis uses).
    pub paper_edges: usize,
    /// Table I average degree.
    pub paper_avg_degree: f64,
    /// Table I diameter column (an `*` marks sampled estimates).
    pub paper_diameter: &'static str,
    pub graph_type: GraphType,
    /// Stand-in generator family.
    pub family: Family,
}

impl DatasetSpec {
    /// Synthesizes the stand-in at `scale` times the paper's vertex
    /// count (clamped to a small minimum so tiny scales stay meaningful).
    pub fn generate(&self, scale: f64, seed: u64) -> Csr {
        let n_target = ((self.paper_vertices as f64 * scale) as usize).max(256);
        match self.family {
            Family::Mesh2d => {
                let side = (n_target as f64).sqrt().round() as usize;
                grid2d(side.max(2), side.max(2), Stencil2d::NinePoint)
            }
            Family::Mesh3d { extra_per_vertex } => {
                let side = (n_target as f64).cbrt().round() as usize;
                let g = grid3d(side.max(2), side.max(2), side.max(2), Stencil3d::SevenPoint);
                if extra_per_vertex > 0.0 {
                    augment_local(&g, extra_per_vertex, 2 * side.max(2), seed)
                } else {
                    g
                }
            }
            Family::Slab27 { layers } => {
                let side = ((n_target / layers) as f64).sqrt().round() as usize;
                grid3d(
                    side.max(2),
                    side.max(2),
                    layers,
                    Stencil3d::TwentySevenPoint,
                )
            }
            Family::Shell {
                layers,
                extra_per_vertex,
            } => {
                let side = ((n_target / layers) as f64).sqrt().round() as usize;
                shell3d(side.max(2), side.max(2), layers, extra_per_vertex, seed)
            }
            Family::Circuit {
                local,
                long_fraction,
            } => circuit(
                n_target,
                CircuitParams {
                    local_per_vertex: local,
                    long_range_fraction: long_fraction,
                    hubs: (n_target / 50_000).max(2),
                    hub_fanout: 64,
                },
                seed,
            ),
            Family::Banded {
                bandwidth,
                edges_per_vertex,
            } => banded_random(n_target, bandwidth, edges_per_vertex, seed),
        }
    }
}

/// Adds `per_vertex` (fractional) extra short-range random edges per
/// vertex inside a locality `window`.
fn augment_local(g: &Csr, per_vertex: f64, window: usize, seed: u64) -> Csr {
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA06);
    let mut b = GraphBuilder::new(n);
    for (u, v) in g.edges() {
        b.push(u, v);
    }
    let extra = (n as f64 * per_vertex) as usize;
    for _ in 0..extra {
        let v = rng.gen_range(0..n);
        let lo = v.saturating_sub(window);
        let hi = (v + window).min(n - 1);
        let t = rng.gen_range(lo..=hi);
        if t != v {
            b.push(v as u32, t as u32);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(family: Family) -> DatasetSpec {
        DatasetSpec {
            name: "test",
            paper_vertices: 100_000,
            paper_edges: 400_000,
            paper_avg_degree: 8.0,
            paper_diameter: "100*",
            graph_type: GraphType::RealUndirected,
            family,
        }
    }

    #[test]
    fn mesh2d_degree() {
        let g = spec(Family::Mesh2d).generate(0.05, 1);
        assert!((6.5..8.1).contains(&g.avg_degree()), "{}", g.avg_degree());
    }

    #[test]
    fn mesh3d_degree_with_extras() {
        let g = spec(Family::Mesh3d {
            extra_per_vertex: 0.9,
        })
        .generate(0.05, 1);
        assert!((6.0..8.5).contains(&g.avg_degree()), "{}", g.avg_degree());
    }

    #[test]
    fn slab_degree_near_17() {
        let g = spec(Family::Slab27 { layers: 2 }).generate(0.05, 1);
        assert!((14.0..18.0).contains(&g.avg_degree()), "{}", g.avg_degree());
    }

    #[test]
    fn shell_degree_near_36() {
        let g = spec(Family::Shell {
            layers: 3,
            extra_per_vertex: 6,
        })
        .generate(0.05, 1);
        assert!((30.0..40.0).contains(&g.avg_degree()), "{}", g.avg_degree());
    }

    #[test]
    fn generate_scales_vertices() {
        let small = spec(Family::Mesh2d).generate(0.01, 1);
        let large = spec(Family::Mesh2d).generate(0.04, 1);
        assert!(large.num_vertices() > 3 * small.num_vertices());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = spec(Family::Banded {
            bandwidth: 40,
            edges_per_vertex: 8,
        })
        .generate(0.02, 3);
        let b = spec(Family::Banded {
            bandwidth: 40,
            edges_per_vertex: 8,
        })
        .generate(0.02, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn type_codes() {
        assert_eq!(GraphType::RealUndirected.code(), "ru");
        assert_eq!(GraphType::RealDirected.code(), "rd");
        assert_eq!(GraphType::GeneratedUndirected.code(), "gu");
    }
}
