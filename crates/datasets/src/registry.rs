//! The Table I rows and the DIMACS10 RGG scaling family.

use crate::spec::{DatasetSpec, Family, GraphType};
use gc_graph::Csr;

/// Default synthesis scale for the `repro` harness: stand-ins at 20% of
/// the paper's vertex counts. Raised 10x from the original 2% once the
/// executor fast path landed — the rankings were already stable at 2%,
/// but per-row wall times were sub-millisecond and overhead-dominated,
/// which made the committed benchmark artifact a poor perf anchor.
pub const DEFAULT_SCALE: f64 = 0.2;

/// Much smaller scale used by unit/integration tests.
pub const TEST_SCALE: f64 = 0.002;

/// The 12 real-world rows of Table I, in the paper's order.
pub fn table1_real_world() -> Vec<DatasetSpec> {
    use Family as F;
    use GraphType::*;
    vec![
        DatasetSpec {
            name: "offshore",
            paper_vertices: 260_000,
            paper_edges: 4_200_000,
            paper_avg_degree: 17.33,
            paper_diameter: "41*",
            graph_type: RealUndirected,
            family: F::Slab27 { layers: 2 },
        },
        DatasetSpec {
            name: "af_shell3",
            paper_vertices: 505_000,
            paper_edges: 17_600_000,
            paper_avg_degree: 35.84,
            paper_diameter: "485*",
            graph_type: RealUndirected,
            family: F::Shell {
                layers: 3,
                extra_per_vertex: 6,
            },
        },
        DatasetSpec {
            name: "parabolic_fem",
            paper_vertices: 1_100_000,
            paper_edges: 112_800_000,
            paper_avg_degree: 8.0,
            paper_diameter: "1536*",
            graph_type: RealUndirected,
            family: F::Mesh2d,
        },
        DatasetSpec {
            name: "apache2",
            paper_vertices: 7_400_000,
            paper_edges: 4_800_000,
            paper_avg_degree: 7.74,
            paper_diameter: "449*",
            graph_type: RealUndirected,
            family: F::Mesh3d {
                extra_per_vertex: 0.9,
            },
        },
        DatasetSpec {
            name: "ecology2",
            paper_vertices: 1_000_000,
            paper_edges: 5_000_000,
            paper_avg_degree: 6.0,
            paper_diameter: "1998*",
            graph_type: RealUndirected,
            // A small random-coupling fraction keeps the stand-in from
            // being perfectly bipartite (the pure 7-point grid is, which
            // makes natural-order greedy unrealistically optimal).
            family: F::Mesh3d {
                extra_per_vertex: 0.3,
            },
        },
        DatasetSpec {
            name: "thermal2",
            paper_vertices: 4_200_000,
            paper_edges: 483_000_000,
            paper_avg_degree: 8.0,
            paper_diameter: "1778*",
            graph_type: RealUndirected,
            family: F::Mesh2d,
        },
        DatasetSpec {
            name: "G3_circuit",
            paper_vertices: 1_600_000,
            paper_edges: 7_700_000,
            paper_avg_degree: 5.83,
            paper_diameter: "515*",
            graph_type: RealUndirected,
            family: F::Circuit {
                local: 2,
                long_fraction: 0.9,
            },
        },
        DatasetSpec {
            name: "FEM_3D_thermal2",
            paper_vertices: 148_000,
            paper_edges: 3_500_000,
            paper_avg_degree: 24.6,
            paper_diameter: "150",
            graph_type: RealDirected,
            family: F::Slab27 { layers: 4 },
        },
        DatasetSpec {
            name: "thermomech_dK",
            paper_vertices: 204_000,
            paper_edges: 2_800_000,
            paper_avg_degree: 14.93,
            paper_diameter: "647*",
            graph_type: RealDirected,
            family: F::Banded {
                bandwidth: 60,
                edges_per_vertex: 8,
            },
        },
        DatasetSpec {
            name: "ASIC_320ks",
            paper_vertices: 322_000,
            paper_edges: 1_300_000,
            paper_avg_degree: 6.68,
            paper_diameter: "45",
            graph_type: RealDirected,
            family: F::Circuit {
                local: 2,
                long_fraction: 1.0,
            },
        },
        DatasetSpec {
            name: "cage13",
            paper_vertices: 445_000,
            paper_edges: 7_500_000,
            paper_avg_degree: 17.8,
            paper_diameter: "42*",
            graph_type: RealDirected,
            family: F::Banded {
                bandwidth: 200,
                edges_per_vertex: 9,
            },
        },
        DatasetSpec {
            name: "atmosmodd",
            paper_vertices: 1_300_000,
            paper_edges: 8_800_000,
            paper_avg_degree: 7.94,
            paper_diameter: "351*",
            graph_type: RealDirected,
            family: F::Mesh3d {
                extra_per_vertex: 1.0,
            },
        },
    ]
}

/// RGG scales of Table I / Figure 3 (`rgg_n_2_{15..24}_s0`).
pub fn rgg_scales() -> Vec<u32> {
    (15..=24).collect()
}

/// The DIMACS10 name of the RGG family member at `scale` (`n = 2^scale`).
pub fn rgg_name(scale: u32) -> String {
    format!("rgg_n_2_{scale}_s0")
}

/// Parses a DIMACS10 RGG name (`rgg_n_2_<scale>_s0`) back to its scale
/// exponent. Accepts any exponent the generator can synthesize, not just
/// the Table I range.
pub fn rgg_scale_of_name(name: &str) -> Option<u32> {
    name.strip_prefix("rgg_n_2_")?
        .strip_suffix("_s0")?
        .parse()
        .ok()
}

/// Synthesizes the RGG family member at `scale`: `2^scale` uniform
/// points with the DIMACS10 connectivity radius. Deterministic in
/// `seed` — the same seed always yields the same edge list.
pub fn rgg_generate(scale: u32, seed: u64) -> Csr {
    gc_graph::generators::rgg_scale(scale, seed)
}

/// Looks up a Table I row by its SuiteSparse name.
pub fn dataset_by_name(name: &str) -> Option<DatasetSpec> {
    table1_real_world().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_in_paper_order() {
        let rows = table1_real_world();
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0].name, "offshore");
        assert_eq!(rows[6].name, "G3_circuit");
        assert_eq!(rows[11].name, "atmosmodd");
    }

    #[test]
    fn rgg_scales_span() {
        assert_eq!(rgg_scales(), vec![15, 16, 17, 18, 19, 20, 21, 22, 23, 24]);
    }

    #[test]
    fn lookup() {
        assert!(dataset_by_name("af_shell3").is_some());
        assert!(dataset_by_name("twitter").is_none());
    }

    #[test]
    fn rgg_names_roundtrip() {
        for s in rgg_scales() {
            assert_eq!(rgg_scale_of_name(&rgg_name(s)), Some(s));
        }
        assert_eq!(rgg_name(15), "rgg_n_2_15_s0");
        assert_eq!(rgg_scale_of_name("rgg_n_2_15_s1"), None);
        assert_eq!(rgg_scale_of_name("ecology2"), None);
    }

    #[test]
    fn rgg_generation_is_deterministic_in_seed() {
        let a = rgg_generate(10, 7);
        let b = rgg_generate(10, 7);
        assert_eq!(a, b, "same seed must yield the same edge list");
        assert_eq!(a.num_vertices(), 1 << 10);
        let c = rgg_generate(10, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn all_generate_at_test_scale_with_plausible_degree() {
        for d in table1_real_world() {
            let g = d.generate(TEST_SCALE, 1);
            assert!(g.num_vertices() >= 256, "{} too small", d.name);
            let deg = g.avg_degree();
            let target = d.paper_avg_degree;
            assert!(
                deg > target * 0.55 && deg < target * 1.45,
                "{}: generated degree {deg:.2} vs paper {target:.2}",
                d.name
            );
        }
    }

    #[test]
    fn af_shell3_has_highest_degree() {
        // The paper's af_shell3 slowdown discussion rests on this.
        let rows = table1_real_world();
        let shell_deg = dataset_by_name("af_shell3")
            .unwrap()
            .generate(TEST_SCALE, 1)
            .avg_degree();
        for d in &rows {
            if d.name != "af_shell3" {
                let deg = d.generate(TEST_SCALE, 1).avg_degree();
                assert!(
                    shell_deg > deg,
                    "{} degree {deg:.1} >= af_shell3 {shell_deg:.1}",
                    d.name
                );
            }
        }
    }
}
