//! Span tracing: a [`Tracer`] collects nested [`SpanRecord`]s carrying
//! key=value attributes on two timelines at once — host wall clock
//! (microseconds since the tracer's epoch) and the vgpu model clock
//! (model milliseconds), the unit the paper reports.
//!
//! ## Propagation
//!
//! Lower layers (the colorers, the virtual device) must not thread a
//! tracer handle through every call, so the crate follows the `log`/
//! `tracing` dispatch pattern: a thread installs a tracer as *current*
//! with [`Tracer::make_current`], and the free functions [`span`],
//! [`instant`], and [`record_complete`] resolve it through thread-local
//! state. With no current tracer every call is a cheap no-op, which is
//! what keeps the hot paths untraced by default.
//!
//! Each thread that installs a tracer gets its own *lane* (one row in
//! the Chrome-trace view); spans opened on a thread nest by a per-thread
//! stack, so a service request span, the colorer iteration spans inside
//! it, and the kernel events inside those form one parent chain without
//! any cross-crate plumbing.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Whether a record is a real span or a zero-duration marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    Span,
    Instant,
}

/// One finished span or instant event.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Unique within the tracer, in completion order.
    pub id: u64,
    /// Enclosing span at open time, if any.
    pub parent: Option<u64>,
    /// The lane (worker thread / device row) the event belongs to.
    pub lane: u64,
    pub name: String,
    pub kind: EventKind,
    /// Microseconds since the tracer's epoch.
    pub wall_start_us: u64,
    /// Zero for instants.
    pub wall_dur_us: u64,
    /// Model-clock start in model-ms, when the layer that emitted the
    /// span runs on a metered device.
    pub model_start_ms: Option<f64>,
    pub model_dur_ms: Option<f64>,
    pub attrs: Vec<(String, String)>,
}

#[derive(Default)]
struct TraceState {
    finished: Vec<SpanRecord>,
    lane_names: Vec<(u64, String)>,
}

struct TracerInner {
    epoch: Instant,
    next_id: AtomicU64,
    next_lane: AtomicU64,
    state: Mutex<TraceState>,
}

/// A shareable (cheaply clonable) span collector.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock().unwrap();
        f.debug_struct("Tracer")
            .field("finished", &st.finished.len())
            .finish_non_exhaustive()
    }
}

struct ThreadCtx {
    tracer: Tracer,
    lane: u64,
    /// Ids of the open spans on this thread, innermost last.
    stack: Vec<u64>,
}

thread_local! {
    static CURRENT: RefCell<Vec<ThreadCtx>> = const { RefCell::new(Vec::new()) };
}

impl Tracer {
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                epoch: Instant::now(),
                next_id: AtomicU64::new(1),
                next_lane: AtomicU64::new(1),
                state: Mutex::new(TraceState::default()),
            }),
        }
    }

    /// Microseconds between the tracer's epoch and `at` (0 if `at`
    /// precedes the epoch).
    pub fn us_since_epoch(&self, at: Instant) -> u64 {
        at.checked_duration_since(self.inner.epoch)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }

    /// Installs this tracer as the calling thread's current tracer and
    /// assigns the thread a fresh lane, named after the thread when it
    /// has a name. Restores the previous current tracer when the guard
    /// drops, so scopes nest.
    pub fn make_current(&self) -> CurrentGuard {
        let lane = self.inner.next_lane.fetch_add(1, Ordering::Relaxed);
        if let Some(name) = std::thread::current().name() {
            let mut st = self.inner.state.lock().unwrap();
            st.lane_names.push((lane, name.to_string()));
        }
        CURRENT.with(|c| {
            c.borrow_mut().push(ThreadCtx {
                tracer: self.clone(),
                lane,
                stack: Vec::new(),
            })
        });
        CurrentGuard { _private: () }
    }

    /// Names the given lane (overrides any thread-derived name).
    pub fn name_lane(&self, lane: u64, name: &str) {
        let mut st = self.inner.state.lock().unwrap();
        st.lane_names.push((lane, name.to_string()));
    }

    /// All finished records, in completion order. Children therefore
    /// appear *before* their parent; consumers that need open-order
    /// should sort by `wall_start_us`.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.state.lock().unwrap().finished.clone()
    }

    /// Lane-id → display-name pairs (last name set wins per lane).
    pub fn lane_names(&self) -> Vec<(u64, String)> {
        self.inner.state.lock().unwrap().lane_names.clone()
    }

    fn fresh_id(&self) -> u64 {
        self.inner.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn push(&self, rec: SpanRecord) {
        self.inner.state.lock().unwrap().finished.push(rec);
    }

    fn same_tracer(&self, other: &Tracer) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

/// Uninstalls the thread's current tracer on drop.
pub struct CurrentGuard {
    _private: (),
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// True when the calling thread has a current tracer. Callers measuring
/// extra state for attributes (e.g. `Instant::now` per kernel launch)
/// should gate on this.
pub fn enabled() -> bool {
    CURRENT.with(|c| !c.borrow().is_empty())
}

/// A handle to the calling thread's current tracer, if one is installed.
///
/// This is the fan-out hook: a layer that spawns worker threads (the
/// sharded runner's one-thread-per-device pool, for example) captures the
/// ambient tracer here and re-installs it on each worker with
/// [`Tracer::make_current`], so every worker gets its own lane in the
/// same trace without any handle plumbing through the public API.
pub fn current() -> Option<Tracer> {
    CURRENT.with(|c| c.borrow().last().map(|ctx| ctx.tracer.clone()))
}

fn with_ctx<R>(f: impl FnOnce(&mut ThreadCtx) -> R) -> Option<R> {
    CURRENT.with(|c| c.borrow_mut().last_mut().map(f))
}

/// An open span. Records itself on drop; attributes and model-clock
/// bounds are attached while it is open. All methods are no-ops when the
/// guard was created without a current tracer.
#[must_use = "a span measures the scope it lives in"]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

struct OpenSpan {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    lane: u64,
    name: String,
    started: Instant,
    /// Overrides `started` for retroactive spans (e.g. a request span
    /// that began at submission on another thread).
    wall_start_override: Option<Instant>,
    model_start_ms: Option<f64>,
    model_end_ms: Option<f64>,
    attrs: Vec<(String, String)>,
}

impl SpanGuard {
    /// A guard that records nothing.
    pub fn disabled() -> Self {
        SpanGuard { open: None }
    }

    /// Whether this guard will record on drop.
    pub fn is_recording(&self) -> bool {
        self.open.is_some()
    }

    /// Attaches a key=value attribute.
    pub fn attr(&mut self, key: &str, value: impl std::fmt::Display) {
        if let Some(o) = self.open.as_mut() {
            o.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Sets the span's model-clock extent, in model-ms.
    pub fn set_model_range(&mut self, start_ms: f64, end_ms: f64) {
        if let Some(o) = self.open.as_mut() {
            o.model_start_ms = Some(start_ms);
            o.model_end_ms = Some(end_ms);
        }
    }

    /// Backdates the span's wall start (the duration still ends at drop
    /// time). Used for lifecycle spans that logically began on another
    /// thread, like request spans measured from submission.
    pub fn set_wall_start(&mut self, at: Instant) {
        if let Some(o) = self.open.as_mut() {
            o.wall_start_override = Some(at);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(o) = self.open.take() else { return };
        let end = Instant::now();
        let start = o.wall_start_override.unwrap_or(o.started);
        let wall_start_us = o.tracer.us_since_epoch(start);
        let wall_end_us = o.tracer.us_since_epoch(end);
        with_ctx(|ctx| {
            if ctx.tracer.same_tracer(&o.tracer) {
                // Pop this span (and anything a buggy caller leaked
                // above it) off the thread's open stack.
                if let Some(pos) = ctx.stack.iter().rposition(|&id| id == o.id) {
                    ctx.stack.truncate(pos);
                }
            }
        });
        o.tracer.push(SpanRecord {
            id: o.id,
            parent: o.parent,
            lane: o.lane,
            name: o.name,
            kind: EventKind::Span,
            wall_start_us,
            wall_dur_us: wall_end_us.saturating_sub(wall_start_us),
            model_start_ms: o.model_start_ms,
            model_dur_ms: match (o.model_start_ms, o.model_end_ms) {
                (Some(s), Some(e)) => Some((e - s).max(0.0)),
                _ => None,
            },
            attrs: o.attrs,
        });
    }
}

/// Opens a span under the calling thread's current tracer (no-op guard
/// when tracing is off). The span becomes the parent of everything
/// opened on this thread until it drops.
pub fn span(name: &str) -> SpanGuard {
    let open = with_ctx(|ctx| {
        let id = ctx.tracer.fresh_id();
        let parent = ctx.stack.last().copied();
        ctx.stack.push(id);
        OpenSpan {
            tracer: ctx.tracer.clone(),
            id,
            parent,
            lane: ctx.lane,
            name: name.to_string(),
            started: Instant::now(),
            wall_start_override: None,
            model_start_ms: None,
            model_end_ms: None,
            attrs: Vec::new(),
        }
    });
    SpanGuard { open }
}

/// Records a zero-duration marker under the current span.
pub fn instant(name: &str, attrs: &[(&str, String)]) {
    with_ctx(|ctx| {
        let id = ctx.tracer.fresh_id();
        let rec = SpanRecord {
            id,
            parent: ctx.stack.last().copied(),
            lane: ctx.lane,
            name: name.to_string(),
            kind: EventKind::Instant,
            wall_start_us: ctx.tracer.us_since_epoch(Instant::now()),
            wall_dur_us: 0,
            model_start_ms: None,
            model_dur_ms: None,
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        ctx.tracer.push(rec);
    });
}

/// Records an already-measured span (child of the current span) with
/// explicit wall bounds and an optional model-clock extent. This is the
/// bridge the virtual device uses: the launch is timed inline, then
/// reported as one completed child event.
pub fn record_complete(
    name: &str,
    wall_start: Instant,
    wall_end: Instant,
    model_range_ms: Option<(f64, f64)>,
    attrs: &[(&str, String)],
) {
    with_ctx(|ctx| {
        let id = ctx.tracer.fresh_id();
        let start_us = ctx.tracer.us_since_epoch(wall_start);
        let end_us = ctx.tracer.us_since_epoch(wall_end);
        let rec = SpanRecord {
            id,
            parent: ctx.stack.last().copied(),
            lane: ctx.lane,
            name: name.to_string(),
            kind: EventKind::Span,
            wall_start_us: start_us,
            wall_dur_us: end_us.saturating_sub(start_us),
            model_start_ms: model_range_ms.map(|(s, _)| s),
            model_dur_ms: model_range_ms.map(|(s, e)| (e - s).max(0.0)),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        };
        ctx.tracer.push(rec);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_current_tracer_is_a_noop() {
        assert!(!enabled());
        let mut s = span("orphan");
        s.attr("k", "v");
        drop(s);
        instant("nothing", &[]);
    }

    #[test]
    fn spans_nest_by_thread_stack() {
        let tracer = Tracer::new();
        {
            let _cur = tracer.make_current();
            let outer = span("outer");
            {
                let mut inner = span("inner");
                inner.attr("depth", 2);
                instant("marker", &[("at", "inner".into())]);
            }
            drop(outer);
        }
        let recs = tracer.records();
        assert_eq!(recs.len(), 3);
        let outer = recs.iter().find(|r| r.name == "outer").unwrap();
        let inner = recs.iter().find(|r| r.name == "inner").unwrap();
        let marker = recs.iter().find(|r| r.name == "marker").unwrap();
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(marker.parent, Some(inner.id));
        assert_eq!(marker.kind, EventKind::Instant);
        assert_eq!(inner.attrs, vec![("depth".to_string(), "2".to_string())]);
    }

    #[test]
    fn model_range_and_backdated_start() {
        let tracer = Tracer::new();
        let before = Instant::now();
        {
            let _cur = tracer.make_current();
            let mut s = span("work");
            s.set_model_range(1.5, 4.0);
            s.set_wall_start(before);
        }
        let rec = &tracer.records()[0];
        assert_eq!(rec.model_start_ms, Some(1.5));
        assert!((rec.model_dur_ms.unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(rec.wall_start_us, tracer.us_since_epoch(before));
    }

    #[test]
    fn record_complete_attaches_to_current_parent() {
        let tracer = Tracer::new();
        {
            let _cur = tracer.make_current();
            let parent = span("parent");
            let t0 = Instant::now();
            record_complete(
                "kernel",
                t0,
                t0,
                Some((0.0, 0.25)),
                &[("threads", "64".into())],
            );
            drop(parent);
        }
        let recs = tracer.records();
        let parent = recs.iter().find(|r| r.name == "parent").unwrap();
        let kernel = recs.iter().find(|r| r.name == "kernel").unwrap();
        assert_eq!(kernel.parent, Some(parent.id));
        assert_eq!(kernel.model_dur_ms, Some(0.25));
    }

    #[test]
    fn lanes_are_distinct_per_thread() {
        let tracer = Tracer::new();
        let t2 = {
            let tracer = tracer.clone();
            std::thread::Builder::new()
                .name("lane-test".into())
                .spawn(move || {
                    let _cur = tracer.make_current();
                    drop(span("on-thread"));
                })
                .unwrap()
        };
        {
            let _cur = tracer.make_current();
            drop(span("on-main"));
        }
        t2.join().unwrap();
        let recs = tracer.records();
        let a = recs.iter().find(|r| r.name == "on-thread").unwrap();
        let b = recs.iter().find(|r| r.name == "on-main").unwrap();
        assert_ne!(a.lane, b.lane);
        assert!(tracer
            .lane_names()
            .iter()
            .any(|(l, n)| *l == a.lane && n == "lane-test"));
    }

    #[test]
    fn make_current_scopes_nest_and_restore() {
        let outer = Tracer::new();
        let inner = Tracer::new();
        let _a = outer.make_current();
        {
            let _b = inner.make_current();
            drop(span("inner-span"));
        }
        drop(span("outer-span"));
        assert_eq!(inner.records().len(), 1);
        assert_eq!(outer.records().len(), 1);
        assert_eq!(outer.records()[0].name, "outer-span");
    }
}
