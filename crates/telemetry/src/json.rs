//! A minimal JSON parser, just enough to *validate* what the exporters
//! emit. The workspace builds offline (no serde); the exporter tests and
//! the cross-crate integration tests parse their own output with this
//! module to prove the files are well-formed before a browser or
//! Perfetto ever sees them. Not a general-purpose parser: numbers are
//! `f64`, object keys collapse duplicates (last wins).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<Vec<Json>> {
        match self {
            Json::Array(v) => Some(v.clone()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<String> {
        match self {
            Json::String(s) => Some(s.clone()),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parses one complete JSON document; trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes: Vec<char> = input.chars().collect();
    let mut p = Parser {
        chars: &bytes,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected {c:?}, got {got:?} at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Json::String(self.string()?)),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(format!("unexpected {got:?} at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Object(map)),
                got => return Err(format!("expected ',' or '}}', got {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Array(items)),
                got => return Err(format!("expected ',' or ']', got {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let c = self.bump().ok_or("truncated \\u escape")?;
                            code =
                                code * 16 + c.to_digit(16).ok_or(format!("bad hex digit {c:?}"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => return Err(format!("bad escape {got:?}")),
                },
                Some(c) if (c as u32) < 0x20 => {
                    return Err(format!("raw control character {c:?} in string"))
                }
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || "+-.eE".contains(c)) {
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_objects() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Number(-250.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::String("a\n\"bA".into())
        );
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"d"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("d".to_string()));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let v = parse(" {\n \"k\" : [ 1 , 2 ] \t}\r\n").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 2);
    }
}
