//! Named counters, gauges, and latency histograms behind one registry,
//! exportable as Prometheus text exposition.
//!
//! [`LatencyHistogram`] began life inside `gc-service`'s stats module;
//! it lives here now so the service, the bench harness, and the trace
//! subcommand all share one bucket layout and one quantile estimator
//! (`gc-service` re-exports it for compatibility).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Upper edges (model-ms) of the latency histogram buckets; the last
/// bucket is open-ended. Spans launch-overhead-bound tiny runs (<0.01ms)
/// through Table 1-scale graphs (hundreds of ms).
pub const LATENCY_BUCKET_EDGES_MS: [f64; 10] =
    [0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0];

/// A fixed-bucket histogram of model-ms latencies.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LatencyHistogram {
    /// `counts[i]` counts samples `<= LATENCY_BUCKET_EDGES_MS[i]`;
    /// `counts[10]` is the overflow bucket.
    pub counts: [u64; 11],
    pub samples: u64,
    pub total_ms: f64,
    pub max_ms: f64,
}

impl LatencyHistogram {
    pub fn record(&mut self, model_ms: f64) {
        let idx = LATENCY_BUCKET_EDGES_MS
            .iter()
            .position(|&edge| model_ms <= edge)
            .unwrap_or(LATENCY_BUCKET_EDGES_MS.len());
        self.counts[idx] += 1;
        self.samples += 1;
        self.total_ms += model_ms;
        if model_ms > self.max_ms {
            self.max_ms = model_ms;
        }
    }

    pub fn mean_ms(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_ms / self.samples as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket containing the target rank. The first bucket
    /// interpolates from 0; ranks landing in the open overflow bucket
    /// report `max_ms` (the only finite statement the histogram can make
    /// there). Results are clamped to `max_ms` so a sparse bucket never
    /// reports a latency above the worst observed sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.samples as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= rank {
                let est = match LATENCY_BUCKET_EDGES_MS.get(i) {
                    Some(&upper) => {
                        let lower = if i == 0 {
                            0.0
                        } else {
                            LATENCY_BUCKET_EDGES_MS[i - 1]
                        };
                        lower + (upper - lower) * ((rank - cum as f64) / c as f64)
                    }
                    // Open-ended overflow bucket.
                    None => self.max_ms,
                };
                return est.min(self.max_ms);
            }
            cum = next;
        }
        self.max_ms
    }

    /// Median latency estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Tail latency estimates — `mean`/`max` alone hide the tail.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Render like `[0.1: 3] [1: 12] [+inf: 1]`, skipping empty buckets.
    pub fn brief(&self) -> String {
        let mut parts = Vec::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            match LATENCY_BUCKET_EDGES_MS.get(i) {
                Some(edge) => parts.push(format!("[{edge}: {c}]")),
                None => parts.push(format!("[+inf: {c}]")),
            }
        }
        if parts.is_empty() {
            "(empty)".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// A metric identity: name plus sorted label pairs.
pub type MetricKey = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (a value that can go up and down).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn sub(&self, d: i64) {
        self.0.fetch_sub(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<Mutex<LatencyHistogram>>);

impl Histogram {
    pub fn observe(&self, ms: f64) {
        self.0.lock().unwrap().record(ms);
    }

    pub fn snapshot(&self) -> LatencyHistogram {
        self.0.lock().unwrap().clone()
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<MetricKey, Counter>>,
    gauges: Mutex<BTreeMap<MetricKey, Gauge>>,
    histograms: Mutex<BTreeMap<MetricKey, Histogram>>,
}

/// A shareable (cheaply clonable) registry of named metrics. Handles
/// returned by the accessors are interned: asking twice for the same
/// (name, labels) yields the same underlying cell.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.lock().unwrap().len())
            .field("gauges", &self.inner.gauges.lock().unwrap().len())
            .field("histograms", &self.inner.histograms.lock().unwrap().len())
            .finish()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.inner
            .counters
            .lock()
            .unwrap()
            .entry(key(name, labels))
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.inner
            .gauges
            .lock()
            .unwrap()
            .entry(key(name, labels))
            .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.inner
            .histograms
            .lock()
            .unwrap()
            .entry(key(name, labels))
            .or_insert_with(|| Histogram(Arc::new(Mutex::new(LatencyHistogram::default()))))
            .clone()
    }

    /// Every counter as `(key, value)`, name-sorted.
    pub fn counters(&self) -> Vec<(MetricKey, u64)> {
        self.inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Every gauge as `(key, value)`, name-sorted.
    pub fn gauges(&self) -> Vec<(MetricKey, i64)> {
        self.inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect()
    }

    /// Every histogram as `(key, snapshot)`, name-sorted.
    pub fn histograms(&self) -> Vec<(MetricKey, LatencyHistogram)> {
        self.inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = LatencyHistogram::default();
        h.record(0.005); // bucket 0 (<= 0.01)
        h.record(0.5); // bucket 4 (<= 1.0)
        h.record(1000.0); // overflow
        assert_eq!(h.samples, 3);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[4], 1);
        assert_eq!(h.counts[10], 1);
        assert!((h.mean_ms() - (0.005 + 0.5 + 1000.0) / 3.0).abs() < 1e-9);
        assert_eq!(h.max_ms, 1000.0);
        let brief = h.brief();
        assert!(brief.contains("[0.01: 1]"), "{brief}");
        assert!(brief.contains("[+inf: 1]"), "{brief}");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = LatencyHistogram::default();
        // 100 samples in the (0.3, 1.0] bucket.
        for _ in 0..100 {
            h.record(0.65);
        }
        // p50 rank = 50 of 100 → 0.3 + 0.7 * 0.5 = 0.65.
        assert!((h.p50() - 0.65).abs() < 1e-9, "{}", h.p50());
        assert!(h.p95() > h.p50());
        // Clamped: interpolation cannot exceed the observed max.
        assert!(h.p99() <= h.max_ms);
    }

    #[test]
    fn quantiles_across_buckets_are_monotone() {
        let mut h = LatencyHistogram::default();
        for ms in [0.005, 0.02, 0.05, 0.2, 0.8, 2.0, 8.0, 20.0, 80.0, 200.0] {
            h.record(ms);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max_ms);
    }

    #[test]
    fn overflow_quantile_reports_max() {
        let mut h = LatencyHistogram::default();
        for _ in 0..10 {
            h.record(5000.0);
        }
        assert_eq!(h.p50(), 5000.0);
        assert_eq!(h.p99(), 5000.0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(LatencyHistogram::default().p99(), 0.0);
    }

    #[test]
    fn registry_interns_handles() {
        let reg = MetricsRegistry::new();
        reg.counter("requests_total").inc();
        reg.counter("requests_total").add(2);
        assert_eq!(reg.counter("requests_total").get(), 3);

        reg.gauge("depth").set(5);
        reg.gauge("depth").sub(2);
        assert_eq!(reg.gauge("depth").get(), 3);

        reg.histogram_with("latency_ms", &[("colorer", "X")])
            .observe(0.5);
        reg.histogram_with("latency_ms", &[("colorer", "X")])
            .observe(1.5);
        reg.histogram_with("latency_ms", &[("colorer", "Y")])
            .observe(9.0);
        let hists = reg.histograms();
        assert_eq!(hists.len(), 2);
        assert_eq!(hists[0].1.samples, 2);
    }

    #[test]
    fn labels_are_order_insensitive() {
        let reg = MetricsRegistry::new();
        reg.counter_with("c", &[("a", "1"), ("b", "2")]).inc();
        reg.counter_with("c", &[("b", "2"), ("a", "1")]).inc();
        assert_eq!(reg.counters().len(), 1);
        assert_eq!(reg.counters()[0].1, 2);
    }
}
