//! `gc-telemetry` — the observability layer of the reproduction: span
//! tracing plus a metrics registry, with three exporters.
//!
//! The paper's §V analysis lives on being able to say *where time goes*
//! ("a second call to `GrB_vxm` ends up taking nearly 50% of the
//! runtime"). The kernel-level `gc_vgpu::Profiler` and the request-level
//! `gc-service` counters each answer that at one altitude; this crate
//! connects them: a single trace shows a service request span, the
//! colorer's per-iteration spans nested inside it, and the virtual
//! device's kernel/sync/memcpy events nested inside those — on both the
//! host wall clock and the deterministic model clock.
//!
//! * [`Tracer`] / [`span()`] / [`SpanGuard`] — nested spans with
//!   key=value attributes, propagated through thread-local "current
//!   tracer" state (see [`span`](mod@span) module docs) so lower layers
//!   need no handle plumbing. No current tracer ⇒ every call is a no-op.
//! * [`MetricsRegistry`] — named counters, gauges, and
//!   [`LatencyHistogram`]s (with p50/p95/p99 bucket-interpolated
//!   quantiles), optionally labeled.
//! * Exporters — [`to_jsonl`] (one event per line), [`to_chrome_trace`]
//!   (Perfetto / `chrome://tracing`, one lane per worker thread, wall or
//!   model timeline), and [`to_prometheus`] (text exposition 0.0.4).
//!
//! ```
//! use gc_telemetry::{span, Tracer, MetricsRegistry};
//!
//! let tracer = Tracer::new();
//! let metrics = MetricsRegistry::new();
//! {
//!     let _cur = tracer.make_current();
//!     let mut request = span::span("request");
//!     request.attr("objective", "balanced");
//!     {
//!         let mut iter = span::span("iteration");
//!         iter.set_model_range(0.0, 0.42); // model-ms
//!     }
//!     metrics.counter("requests_total").inc();
//! }
//! assert_eq!(tracer.records().len(), 2);
//! assert!(gc_telemetry::to_prometheus(&metrics).contains("requests_total 1"));
//! ```

pub mod export;
pub mod json;
pub mod metrics;
pub mod span;

pub use export::{summarize_by_name, to_chrome_trace, to_jsonl, to_prometheus, ClockKind};
pub use metrics::{
    Counter, Gauge, Histogram, LatencyHistogram, MetricsRegistry, LATENCY_BUCKET_EDGES_MS,
};
pub use span::{
    current, enabled, instant, record_complete, span, CurrentGuard, EventKind, SpanGuard,
    SpanRecord, Tracer,
};
