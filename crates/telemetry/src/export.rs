//! Exporters: JSONL event log, Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`), and Prometheus text exposition.
//!
//! All JSON is emitted by hand (the workspace builds offline, without
//! serde); [`crate::json`] provides the matching parser the tests use to
//! prove the output is well-formed.

use crate::metrics::{MetricsRegistry, LATENCY_BUCKET_EDGES_MS};
use crate::span::{EventKind, SpanRecord, Tracer};

/// Which timeline the Chrome exporter places events on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ClockKind {
    /// Host wall clock (every event has one).
    #[default]
    Wall,
    /// The vgpu model clock, in model-µs. Events that never touched a
    /// metered device carry no model extent and are skipped.
    Model,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn attrs_json(attrs: &[(String, String)]) -> String {
    let fields: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// One JSON object per line, one line per recorded event. Stable keys:
/// `id`, `parent`, `lane`, `name`, `kind`, `wall_start_us`,
/// `wall_dur_us`, and, when present, `model_start_ms` / `model_dur_ms`
/// and an `attrs` object.
pub fn to_jsonl(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{{\"id\":{},\"parent\":{},\"lane\":{},\"name\":\"{}\",\"kind\":\"{}\",\
             \"wall_start_us\":{},\"wall_dur_us\":{}",
            r.id,
            r.parent
                .map(|p| p.to_string())
                .unwrap_or_else(|| "null".into()),
            r.lane,
            escape_json(&r.name),
            match r.kind {
                EventKind::Span => "span",
                EventKind::Instant => "instant",
            },
            r.wall_start_us,
            r.wall_dur_us,
        ));
        if let (Some(s), Some(d)) = (r.model_start_ms, r.model_dur_ms) {
            out.push_str(&format!(",\"model_start_ms\":{s},\"model_dur_ms\":{d}"));
        }
        if !r.attrs.is_empty() {
            out.push_str(&format!(",\"attrs\":{}", attrs_json(&r.attrs)));
        }
        out.push_str("}\n");
    }
    out
}

/// Chrome trace-event JSON: an object with a `traceEvents` array of
/// complete (`"ph":"X"`) events — one lane per worker/device thread —
/// plus instant (`"ph":"i"`) markers and `thread_name` metadata, all
/// under a single pid. Open the file in Perfetto (ui.perfetto.dev) or
/// `chrome://tracing`.
pub fn to_chrome_trace(tracer: &Tracer, clock: ClockKind) -> String {
    let records = tracer.records();
    let mut events: Vec<String> = Vec::new();
    for (lane, name) in tracer.lane_names() {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(&name)
        ));
    }
    for r in &records {
        let (ts, dur) = match clock {
            ClockKind::Wall => (r.wall_start_us as f64, r.wall_dur_us as f64),
            ClockKind::Model => match (r.model_start_ms, r.model_dur_ms) {
                // Model-ms → trace-µs keeps Perfetto's units readable.
                (Some(s), Some(d)) => (s * 1e3, d * 1e3),
                _ => continue,
            },
        };
        let mut args = vec![format!("\"span_id\":\"{}\"", r.id)];
        if let Some(p) = r.parent {
            args.push(format!("\"parent_id\":\"{p}\""));
        }
        if let (Some(s), Some(d)) = (r.model_start_ms, r.model_dur_ms) {
            args.push(format!("\"model_start_ms\":{s},\"model_dur_ms\":{d}"));
        }
        for (k, v) in &r.attrs {
            args.push(format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
        }
        let args = args.join(",");
        match r.kind {
            EventKind::Span => events.push(format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"dur\":{dur},\
                 \"name\":\"{}\",\"cat\":\"gc\",\"args\":{{{args}}}}}",
                r.lane,
                escape_json(&r.name)
            )),
            EventKind::Instant => events.push(format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"s\":\"t\",\
                 \"name\":\"{}\",\"cat\":\"gc\",\"args\":{{{args}}}}}",
                r.lane,
                escape_json(&r.name)
            )),
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

fn label_str(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{}=\"{}\"",
                sanitize_metric_name(k),
                v.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Prometheus text exposition (format version 0.0.4): every counter,
/// gauge, and histogram in the registry, exactly one `# TYPE` line per
/// metric name. Histograms emit cumulative `_bucket{le=...}` series plus
/// `_sum`/`_count`, the standard shape Prometheus computes quantiles
/// from; pre-computed p50/p95/p99 are additionally exposed as a
/// `<name>_quantile` gauge so a plain-text dump already answers tail-
/// latency questions without a query engine.
pub fn to_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();

    let mut last_type_line: Option<String> = None;
    let mut emit_type = |out: &mut String, name: &str, kind: &str| {
        let line = format!("# TYPE {name} {kind}\n");
        if last_type_line.as_deref() != Some(line.as_str()) {
            out.push_str(&line);
            last_type_line = Some(line);
        }
    };

    for ((name, labels), value) in registry.counters() {
        let name = sanitize_metric_name(&name);
        emit_type(&mut out, &name, "counter");
        out.push_str(&format!("{name}{} {value}\n", label_str(&labels, None)));
    }
    for ((name, labels), value) in registry.gauges() {
        let name = sanitize_metric_name(&name);
        emit_type(&mut out, &name, "gauge");
        out.push_str(&format!("{name}{} {value}\n", label_str(&labels, None)));
    }
    let histograms = registry.histograms();
    for ((name, labels), h) in &histograms {
        let name = sanitize_metric_name(name);
        emit_type(&mut out, &name, "histogram");
        let mut cum = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            cum += c;
            let le = match LATENCY_BUCKET_EDGES_MS.get(i) {
                Some(edge) => edge.to_string(),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!(
                "{name}_bucket{} {cum}\n",
                label_str(labels, Some(("le", le)))
            ));
        }
        out.push_str(&format!(
            "{name}_sum{} {}\n",
            label_str(labels, None),
            h.total_ms
        ));
        out.push_str(&format!(
            "{name}_count{} {}\n",
            label_str(labels, None),
            h.samples
        ));
    }
    for ((name, labels), h) in &histograms {
        let qname = format!("{}_quantile", sanitize_metric_name(name));
        emit_type(&mut out, &qname, "gauge");
        for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
            out.push_str(&format!(
                "{qname}{} {v}\n",
                label_str(labels, Some(("quantile", q.to_string())))
            ));
        }
    }
    out
}

/// Per-event summary row used by text reports: `(name, count, total
/// wall-µs, total model-ms)` aggregated over all records with that name.
pub fn summarize_by_name(records: &[SpanRecord]) -> Vec<(String, u64, u64, f64)> {
    let mut map = std::collections::BTreeMap::<String, (u64, u64, f64)>::new();
    for r in records {
        let e = map.entry(r.name.clone()).or_default();
        e.0 += 1;
        e.1 += r.wall_dur_us;
        e.2 += r.model_dur_ms.unwrap_or(0.0);
    }
    map.into_iter()
        .map(|(name, (n, wall, model))| (name, n, wall, model))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use crate::span;

    fn sample_tracer() -> Tracer {
        let tracer = Tracer::new();
        {
            let _cur = tracer.make_current();
            let mut outer = span::span("request");
            outer.attr("objective", "balanced \"quoted\"");
            {
                let mut inner = span::span("iteration");
                inner.set_model_range(0.5, 1.25);
                span::instant("shed", &[("reason", "deadline".into())]);
            }
            drop(outer);
        }
        tracer
    }

    #[test]
    fn jsonl_lines_parse_and_roundtrip_fields() {
        let tracer = sample_tracer();
        let jsonl = to_jsonl(&tracer.records());
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = parse(line).expect("line parses");
            let obj = v.as_object().unwrap();
            assert!(obj.contains_key("id"));
            assert!(obj.contains_key("name"));
            assert!(obj.contains_key("wall_start_us"));
        }
        // The attr with embedded quotes survives the round-trip.
        let req = lines
            .iter()
            .map(|l| parse(l).unwrap())
            .find(|v| v.get("name").and_then(Json::as_str) == Some("request".to_string()))
            .unwrap();
        assert_eq!(
            req.get("attrs").unwrap().get("objective").unwrap().as_str(),
            Some("balanced \"quoted\"".to_string())
        );
    }

    #[test]
    fn chrome_trace_is_wellformed_and_nested() {
        let tracer = sample_tracer();
        let json = to_chrome_trace(&tracer, ClockKind::Wall);
        let v = parse(&json).expect("chrome trace parses");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let mut x = 0;
        let mut i = 0;
        let mut m = 0;
        for e in &events {
            match e.get("ph").unwrap().as_str().unwrap().as_str() {
                "X" => {
                    x += 1;
                    assert!(e.get("ts").unwrap().as_f64().is_some());
                    assert!(e.get("dur").unwrap().as_f64().is_some());
                }
                "i" => i += 1,
                "M" => m += 1,
                other => panic!("unexpected phase {other}"),
            }
        }
        assert_eq!((x, i), (2, 1));
        assert!(m >= 1, "lane metadata expected");
        // The iteration event names its parent span id.
        let iter = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str().unwrap() == "iteration")
            .unwrap();
        let req = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str().unwrap() == "request")
            .unwrap();
        assert_eq!(
            iter.get("args").unwrap().get("parent_id").unwrap().as_str(),
            req.get("args").unwrap().get("span_id").unwrap().as_str()
        );
    }

    #[test]
    fn chrome_model_clock_skips_unmetered_events() {
        let tracer = sample_tracer();
        let json = to_chrome_trace(&tracer, ClockKind::Model);
        let v = parse(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let x: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str().unwrap() == "X")
            .collect();
        assert_eq!(x.len(), 1, "only the metered iteration span remains");
        assert_eq!(x[0].get("name").unwrap().as_str().unwrap(), "iteration");
        assert!((x[0].get("ts").unwrap().as_f64().unwrap() - 500.0).abs() < 1e-9);
        assert!((x[0].get("dur").unwrap().as_f64().unwrap() - 750.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_text_has_one_type_per_metric() {
        let reg = MetricsRegistry::new();
        reg.counter("gc_requests_total").add(7);
        reg.counter_with("gc_outcomes_total", &[("outcome", "served")])
            .add(5);
        reg.counter_with("gc_outcomes_total", &[("outcome", "shed")])
            .add(2);
        reg.gauge("gc_queue_depth").set(3);
        reg.histogram_with("gc_latency_ms", &[("colorer", "Gunrock/Color_IS")])
            .observe(0.2);
        let text = to_prometheus(&reg);
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        assert_eq!(type_lines.len(), 5, "{type_lines:?}");
        let unique: std::collections::HashSet<&&str> = type_lines.iter().collect();
        assert_eq!(unique.len(), type_lines.len(), "duplicate TYPE lines");
        assert!(text.contains("gc_requests_total 7"));
        assert!(text.contains("gc_outcomes_total{outcome=\"served\"} 5"));
        assert!(text.contains("le=\"+Inf\""));
        assert!(
            text.contains("gc_latency_ms_quantile{colorer=\"Gunrock/Color_IS\",quantile=\"0.99\"}")
        );
        // Metric names never contain the raw '/' from colorer names.
        for l in text.lines() {
            if let Some(name) = l.split(['{', ' ']).next() {
                if !l.starts_with('#') {
                    assert!(
                        name.chars()
                            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                        "bad metric name in {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn summarize_aggregates_by_name() {
        let tracer = sample_tracer();
        let rows = summarize_by_name(&tracer.records());
        let iter = rows.iter().find(|r| r.0 == "iteration").unwrap();
        assert_eq!(iter.1, 1);
        assert!((iter.3 - 0.75).abs() < 1e-9);
    }
}
