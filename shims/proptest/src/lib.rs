//! Offline drop-in replacement for the subset of `proptest` this
//! workspace uses (see `shims/` in the repository root for why these
//! exist).
//!
//! Cases are *generated* from a deterministic per-test stream (the seed
//! is a hash of the test's name plus the case index), so a failing case
//! reproduces identically on every run. There is no shrinking: the
//! failure report prints the case number, and re-running the test
//! regenerates exactly that input.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-test configuration; only the case count is modeled.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A rejected test case. `prop_assert*` return this through the enclosing
/// generated closure.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The generation stream handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// FNV-1a over the test name, mixed with the case index: stable
    /// across runs, processes, and machines.
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
        }
    }

    fn sample<T: Standard>(&mut self) -> T {
        self.inner.gen()
    }

    fn range<T, R: SampleRange<T>>(&mut self, r: R) -> T {
        self.inner.gen_range(r)
    }
}

/// Generation-only strategy: produces a value per case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<F, R>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        MapStrategy { base: self, f }
    }

    fn prop_flat_map<F, S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { base: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy {
            base: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct MapStrategy<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> Strategy for MapStrategy<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> R,
{
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMapStrategy<B, F> {
    base: B,
    f: F,
}

impl<B, F, S> Strategy for FlatMapStrategy<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

pub struct FilterStrategy<B, F> {
    base: B,
    f: F,
    reason: &'static str,
}

impl<B, F> Strategy for FilterStrategy<B, F>
where
    B: Strategy,
    F: Fn(&B::Value) -> bool,
{
    type Value = B::Value;
    fn generate(&self, rng: &mut TestRng) -> B::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Full-domain strategy for `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.sample()
            }
        }
    )*};
}
arbitrary_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector of values from `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($arg:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($arg)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($arg)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($arg)+),
                l
            )));
        }
    }};
}

/// The test-suite entry point: expands each `fn name(bindings in
/// strategies) { body }` into a `#[test]` that loops over generated
/// cases. An optional leading `#![proptest_config(expr)]` sets the case
/// count for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $(
        $(#[$meta:meta])+
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::deterministic(stringify!($name), case);
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "proptest `{}` failed at case {}/{}:\n{}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn generation_is_deterministic() {
        let strat = (0usize..100, crate::collection::vec(0u32..50, 0..20));
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn flat_map_sees_outer_value() {
        let strat = (1usize..10).prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..n, 5)));
        for case in 0..200 {
            let mut r = TestRng::deterministic("fm", case);
            let (n, v) = strat.generate(&mut r);
            assert_eq!(v.len(), 5);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 10u32..20), c in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!(b >= 10, "b was {}", b);
            prop_assert_eq!(c as u32 * 2 / 2, c as u32);
            prop_assert_ne!(a, b);
        }

        #[test]
        #[should_panic(expected = "failed at case")]
        fn failing_assert_panics_with_case_number(x in 0u32..10) {
            prop_assert!(x < 5);
        }
    }
}
