//! Offline drop-in replacement for the subset of `rayon` this workspace
//! uses (see `shims/` in the repository root for why these exist).
//!
//! The model is a chunked fork-join over `std::thread::scope`: a pipeline
//! of lazy adapters (`map`, `filter`, `flat_map_iter`, `filter_map`) over
//! an indexable source (a range, a slice, or a vector). Terminal
//! operations split the index space into one contiguous chunk per
//! available core, run each chunk on its own scoped thread, and combine
//! chunk results *in chunk order*, so every terminal is deterministic:
//! `collect` preserves source order exactly, and `reduce` folds in
//! sequential order (a valid association of the rayon contract).

use std::ops::Range;

/// Sources below this many items run inline: spawning threads costs more
/// than the work they would parallelize.
const SPAWN_THRESHOLD: usize = 4;

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads terminal operations may use (rayon-compatible
/// accessor; callers size their task chunks by it).
pub fn current_num_threads() -> usize {
    num_threads()
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// A lazy, splittable pipeline. `fill` produces the items of the given
/// index sub-range, in order, into `sink`.
pub trait ParallelIterator: Sized + Send + Sync {
    type Item: Send;

    /// Number of *source* indices (not necessarily output items —
    /// `filter`/`flat_map_iter` stages change the count downstream).
    fn source_len(&self) -> usize;

    /// Produces the pipeline's output for source indices in `range`.
    fn fill(&self, range: Range<usize>, sink: &mut dyn FnMut(Self::Item));

    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Send + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Send + Sync,
    {
        Filter { base: self, f }
    }

    fn filter_map<F, R>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    /// Like rayon's `flat_map_iter`: `f` returns a *serial* iterator
    /// whose items are spliced into the output in place.
    fn flat_map_iter<F, I>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> I + Send + Sync,
        I: IntoIterator,
        I::Item: Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Materializes each chunk on its own thread, then concatenates the
    /// chunks in order.
    fn run_chunked(&self) -> Vec<Self::Item> {
        let n = self.source_len();
        let threads = num_threads();
        if n < SPAWN_THRESHOLD || threads <= 1 {
            let mut out = Vec::new();
            self.fill(0..n, &mut |x| out.push(x));
            return out;
        }
        let chunks = threads.min(n);
        let per = n.div_ceil(chunks);
        let mut parts: Vec<Vec<Self::Item>> = Vec::with_capacity(chunks);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..chunks)
                .map(|c| {
                    let it = &*self;
                    let lo = c * per;
                    let hi = ((c + 1) * per).min(n);
                    s.spawn(move || {
                        let mut out = Vec::new();
                        it.fill(lo..hi, &mut |x| out.push(x));
                        out
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("parallel worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            out.extend(p);
        }
        out
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Folds every item with `op`, seeding each chunk (and the final
    /// chunk combination) with `identity`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Send + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
    {
        let n = self.source_len();
        let threads = num_threads();
        if n < SPAWN_THRESHOLD || threads <= 1 {
            let mut slot = Some(identity());
            self.fill(0..n, &mut |x| {
                let a = slot.take().expect("reduce accumulator");
                slot = Some(op(a, x));
            });
            return slot.expect("reduce accumulator");
        }
        let chunks = threads.min(n);
        let per = n.div_ceil(chunks);
        let mut parts = Vec::with_capacity(chunks);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..chunks)
                .map(|c| {
                    let it = &self;
                    let id = &identity;
                    let op = &op;
                    let lo = c * per;
                    let hi = ((c + 1) * per).min(n);
                    s.spawn(move || {
                        let mut slot = Some(id());
                        it.fill(lo..hi, &mut |x| {
                            let a = slot.take().expect("reduce accumulator");
                            slot = Some(op(a, x));
                        });
                        slot.expect("reduce accumulator")
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("parallel worker panicked"));
            }
        });
        parts.into_iter().fold(identity(), &op)
    }

    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.run_chunked().into_iter().max()
    }

    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        self.run_chunked().into_iter().min()
    }

    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        self.run_chunked().into_iter().sum()
    }

    fn count(self) -> usize {
        self.run_chunked().len()
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        self.run_chunked().into_iter().for_each(f);
    }
}

/// Conversion of an owned collection into a pipeline source.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

/// Borrowing conversion (`.par_iter()`), yielding references.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

/// `par_sort_unstable` on mutable slices. Sequential: `sort_unstable` is
/// already fast enough for every call site in this workspace, and keeping
/// it serial preserves exact rayon-compatible results (same algorithm
/// class, same output order).
pub trait ParallelSliceMut<T: Send> {
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
}

// ---- sources ----------------------------------------------------------

pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! range_source {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            fn source_len(&self) -> usize {
                self.len
            }
            fn fill(&self, range: Range<usize>, sink: &mut dyn FnMut($t)) {
                for i in range {
                    sink(self.start + i as $t);
                }
            }
        }
    )*};
}
range_source!(usize, u32, u64, i32, i64);

pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn source_len(&self) -> usize {
        self.slice.len()
    }
    fn fill(&self, range: Range<usize>, sink: &mut dyn FnMut(&'a T)) {
        for x in &self.slice[range] {
            sink(x);
        }
    }
}

pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl<T: Send + Sync + Clone> ParallelIterator for VecIter<T> {
    type Item = T;
    fn source_len(&self) -> usize {
        self.items.len()
    }
    fn fill(&self, range: Range<usize>, sink: &mut dyn FnMut(T)) {
        for x in &self.items[range] {
            sink(x.clone());
        }
    }
}

// ---- adapters ---------------------------------------------------------

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn fill(&self, range: Range<usize>, sink: &mut dyn FnMut(R)) {
        self.base.fill(range, &mut |x| sink((self.f)(x)));
    }
}

pub struct Filter<B, F> {
    base: B,
    f: F,
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Send + Sync,
{
    type Item = B::Item;
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn fill(&self, range: Range<usize>, sink: &mut dyn FnMut(B::Item)) {
        self.base.fill(range, &mut |x| {
            if (self.f)(&x) {
                sink(x);
            }
        });
    }
}

pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    type Item = R;
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn fill(&self, range: Range<usize>, sink: &mut dyn FnMut(R)) {
        self.base.fill(range, &mut |x| {
            if let Some(y) = (self.f)(x) {
                sink(y);
            }
        });
    }
}

pub struct FlatMapIter<B, F> {
    base: B,
    f: F,
}

impl<B, F, I> ParallelIterator for FlatMapIter<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> I + Send + Sync,
    I: IntoIterator,
    I::Item: Send,
{
    type Item = I::Item;
    fn source_len(&self) -> usize {
        self.base.source_len()
    }
    fn fill(&self, range: Range<usize>, sink: &mut dyn FnMut(I::Item)) {
        self.base.fill(range, &mut |x| {
            for y in (self.f)(x) {
                sink(y);
            }
        });
    }
}

// ---- terminal collection ----------------------------------------------

pub trait FromParallelIterator<T: Send> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        iter.run_chunked()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 10_000);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * 2);
        }
    }

    #[test]
    fn vec_filter_flat_map_matches_serial() {
        let arcs: Vec<(u32, u32)> = (0..500).map(|i| (i, (i * 7) % 500)).collect();
        let par: Vec<(u32, u32)> = arcs
            .clone()
            .into_par_iter()
            .filter(|&(u, v)| u != v)
            .flat_map_iter(|(u, v)| [(u, v), (v, u)])
            .collect();
        let ser: Vec<(u32, u32)> = arcs
            .into_iter()
            .filter(|&(u, v)| u != v)
            .flat_map(|(u, v)| [(u, v), (v, u)])
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn reduce_matches_fold() {
        let total = (0..1_000u64)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0..1_000u64).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn reduce_tiny_input_runs_inline() {
        assert_eq!(
            (0..1usize).into_par_iter().reduce(|| 100, |a, b| a + b),
            100
        );
        assert_eq!((0..0usize).into_par_iter().reduce(|| 42, |a, b| a + b), 42);
    }

    #[test]
    fn par_iter_filter_map() {
        let v = vec![1u32, 2, 3, 4, 5, 6, 7, 8];
        let odds: Vec<u32> = v
            .par_iter()
            .filter_map(|&x| (x % 2 == 1).then_some(x * 10))
            .collect();
        assert_eq!(odds, vec![10, 30, 50, 70]);
    }

    #[test]
    fn max_and_sort() {
        assert_eq!(
            (0..5_000usize).into_par_iter().map(|x| x ^ 0x2a).max(),
            Some(5039)
        );
        assert_eq!((0..0usize).into_par_iter().max(), None);
        let mut v: Vec<u32> = (0..1000).rev().collect();
        v.par_sort_unstable();
        assert_eq!(v, (0..1000).collect::<Vec<_>>());
    }
}
