//! Offline drop-in replacement for the subset of `criterion` this
//! workspace uses (see `shims/` in the repository root for why these
//! exist).
//!
//! Statistical machinery (warm-up, outlier rejection, HTML reports) is
//! replaced with a plain timing loop: each benchmark runs `sample_size`
//! iterations, or as many as fit in `measurement_time`, and prints the
//! mean, min, and max wall-clock time per iteration. Good enough to spot
//! regressions by eye; the paper-facing numbers come from the *model*
//! clock printed by the benches themselves, not from wall time.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        self
    }
}

/// A named set of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = self.qualify(id.into_benchmark_id());
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            stats: None,
        };
        f(&mut b);
        report(&label, b.stats);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = self.qualify(id.into_benchmark_id());
        let mut b = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            stats: None,
        };
        f(&mut b, input);
        report(&label, b.stats);
        self
    }

    pub fn finish(self) {}

    fn qualify(&self, id: BenchmarkId) -> String {
        if self.name.is_empty() {
            id.0
        } else {
            format!("{}/{}", self.name, id.0)
        }
    }
}

/// Runs the measured closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    stats: Option<SampleStats>,
}

#[derive(Clone, Copy)]
struct SampleStats {
    iters: u64,
    total: Duration,
    min: Duration,
    max: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let budget = Instant::now();
        let mut stats = SampleStats {
            iters: 0,
            total: Duration::ZERO,
            min: Duration::MAX,
            max: Duration::ZERO,
        };
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            stats.iters += 1;
            stats.total += dt;
            stats.min = stats.min.min(dt);
            stats.max = stats.max.max(dt);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
        self.stats = Some(stats);
    }
}

fn report(label: &str, stats: Option<SampleStats>) {
    match stats {
        Some(s) if s.iters > 0 => {
            let mean = s.total / s.iters as u32;
            println!(
                "bench {label:<48} {:>12} mean {:>12} min {:>12} max ({} iters)",
                format_duration(mean),
                format_duration(s.min),
                format_duration(s.max),
                s.iters
            );
        }
        _ => println!("bench {label:<48} (no samples)"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Two-part benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Declared-throughput marker; accepted and ignored.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_secs(1));
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // 5 samples + 1 warm-up.
        assert_eq!(runs, 6);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut seen = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        group.bench_with_input(BenchmarkId::new("id", 7), &41u64, |b, &x| {
            b.iter(|| seen = x + 1)
        });
        group.finish();
        assert_eq!(seen, 42);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").0, "p");
    }
}
