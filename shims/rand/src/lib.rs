//! Offline drop-in replacement for the subset of `rand` this workspace
//! uses. The build environment resolves crates without a network, so the
//! workspace vendors the few external APIs it needs as local shims (see
//! `shims/` in the repository root).
//!
//! The generator is xoshiro256** seeded through SplitMix64 — high-quality
//! and deterministic, but *not* bit-compatible with upstream `StdRng`.
//! Every consumer in this repository treats seeds as opaque stream
//! selectors, so only determinism matters, not the exact stream.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (upstream `rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (upstream `rand::Rng` subset).
pub trait Rng: RngCore {
    /// Samples from the "standard" distribution of `T` (uniform over the
    /// domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform `x` in `[0, span)` without modulo bias.
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of `span` that fits in u64; rejecting draws at or
    // above it keeps the remainder uniform. The loop terminates with
    // probability > 1/2 per draw.
    let limit = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < limit {
            return x % span;
        }
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let v = self.start + f64::sample_standard(rng) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let v = self.start + f32::sample_standard(rng) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** (Blackman & Vigna) seeded via SplitMix64 — the
    /// offline stand-in for upstream `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Upstream `rand::seq::SliceRandom` subset.
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher-Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
