//! Trace demo: run a traced request through the coloring service and
//! write a Perfetto-loadable Chrome trace plus a Prometheus metrics
//! dump.
//!
//! ```text
//! cargo run --release -p gc-examples --bin trace_demo [scale] [out_dir]
//! ```
//!
//! Open the emitted `trace.json` at <https://ui.perfetto.dev> (or
//! `chrome://tracing`): each service worker is one lane, and every
//! request shows as a `request` span containing `queue_wait`,
//! `policy_decide`, the colorer's `color` span (with one `iteration`
//! span per bulk-synchronous step and the virtual device's kernel /
//! memcpy events inside), `verify`, and `cache_insert`.

use std::sync::Arc;

use gc_datasets::TEST_SCALE;
use gc_service::{ColorRequest, ColoringService, Objective, ServiceConfig};
use gc_telemetry::{ClockKind, MetricsRegistry, Tracer};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(TEST_SCALE * 5.0);
    let out_dir = args.next().unwrap_or_else(|| ".".to_string());

    let tracer = Tracer::new();
    let metrics = MetricsRegistry::new();
    let svc = ColoringService::start(
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        }
        .with_tracer(tracer.clone())
        .with_metrics(metrics.clone()),
    );
    let handle = svc.handle();

    // A small mixed workload: three datasets × three objectives, then a
    // repeat of the first request to show a cache hit in the trace.
    let objectives = [
        Objective::Fastest,
        Objective::FewestColors,
        Objective::Balanced,
    ];
    let mut tickets = Vec::new();
    for name in ["ecology2", "af_shell3", "G3_circuit"] {
        let spec = gc_datasets::dataset_by_name(name).expect("registered dataset");
        let g = Arc::new(spec.generate(scale, 42));
        for obj in &objectives {
            let req = ColorRequest::new(Arc::clone(&g), obj.clone()).with_seed(7);
            tickets.push((name, obj.clone(), handle.submit(req)));
        }
        let repeat = ColorRequest::new(g, Objective::Fastest).with_seed(7);
        tickets.push((name, Objective::Fastest, handle.submit(repeat)));
    }
    for (name, obj, ticket) in tickets {
        let resp = ticket.recv().expect("request served");
        println!(
            "{name:<12} {obj:<14} -> {:<22} {} colors, {:.3} model-ms{}",
            resp.colorer,
            resp.num_colors,
            resp.model_ms,
            if resp.cache_hit { " (cache hit)" } else { "" }
        );
    }
    svc.shutdown();

    // Exporters: Chrome trace (wall clock), span log, Prometheus text.
    let trace_path = format!("{out_dir}/trace.json");
    let jsonl_path = format!("{out_dir}/trace.jsonl");
    let prom_path = format!("{out_dir}/metrics.prom");
    std::fs::write(
        &trace_path,
        gc_telemetry::to_chrome_trace(&tracer, ClockKind::Wall),
    )
    .expect("write chrome trace");
    std::fs::write(&jsonl_path, gc_telemetry::to_jsonl(&tracer.records())).expect("write span log");
    std::fs::write(&prom_path, gc_telemetry::to_prometheus(&metrics)).expect("write metrics");

    let records = tracer.records();
    println!(
        "\ncaptured {} spans/events across {} lanes",
        records.len(),
        {
            let mut lanes: Vec<u64> = records.iter().map(|r| r.lane).collect();
            lanes.sort_unstable();
            lanes.dedup();
            lanes.len()
        }
    );
    println!("span breakdown (name, count, wall µs, model-ms):");
    for (name, count, wall_us, model_ms) in gc_telemetry::summarize_by_name(&records) {
        println!("  {name:<28} x{count:<5} {wall_us:>10} µs {model_ms:>10.3} model-ms");
    }
    println!("\nchrome trace -> {trace_path}  (open at https://ui.perfetto.dev)");
    println!("span log     -> {jsonl_path}");
    println!("metrics      -> {prom_path}");
}
