//! Quickstart: color one graph with every implementation and compare.
//!
//! ```text
//! cargo run --release -p gc-examples --bin quickstart [dataset] [scale]
//! ```

use gc_core::runner::all_colorers;
use gc_core::verify::is_proper;
use gc_datasets::{dataset_by_name, DEFAULT_SCALE};

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "G3_circuit".to_string());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(DEFAULT_SCALE);

    let spec = dataset_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown dataset '{name}'; available:");
        for d in gc_datasets::table1_real_world() {
            eprintln!("  {}", d.name);
        }
        std::process::exit(1);
    });

    println!("dataset: {name} stand-in at scale {scale}");
    let g = spec.generate(scale, 42);
    println!(
        "graph: {} vertices, {} edges, avg degree {:.2}, max degree {}\n",
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree(),
        g.max_degree()
    );

    println!(
        "{:<24}{:>12}{:>9}{:>9}{:>11}{:>8}",
        "implementation", "model(ms)", "colors", "iters", "launches", "valid"
    );
    println!("{}", "-".repeat(73));
    for colorer in all_colorers() {
        let r = colorer.run(&g, 42);
        let valid = is_proper(&g, r.coloring.as_slice()).is_ok();
        println!(
            "{:<24}{:>12.3}{:>9}{:>9}{:>11}{:>8}",
            colorer.name(),
            r.model_ms,
            r.num_colors,
            r.iterations,
            r.kernel_launches,
            if valid { "yes" } else { "NO" }
        );
        assert!(valid, "{} produced an invalid coloring", colorer.name());
    }
    println!("\nAll colorings verified proper.");
}
