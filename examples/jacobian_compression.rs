//! Sparse Jacobian compression via graph coloring ("What color is your
//! Jacobian?", one of the paper's §I applications).
//!
//! To estimate a sparse Jacobian with finite differences, columns that
//! share no row can be evaluated together: perturb all of them at once
//! and read off disjoint entries. Valid groups are exactly color classes
//! of the *column intersection graph* (columns adjacent iff some row has
//! nonzeros in both). Colors used = function evaluations needed, versus
//! one per column without coloring.
//!
//! ```text
//! cargo run --release -p gc-examples --bin jacobian_compression
//! ```

use gc_core::gblas_mis::gblas_mis;
use gc_core::greedy::{greedy, Ordering};
use gc_core::verify::assert_proper;
use gc_graph::{Csr, GraphBuilder};

/// A synthetic banded sparse Jacobian pattern: `rows x cols`, each row
/// touching a few nearby columns (a 1-D stencil discretization).
struct SparsePattern {
    rows: Vec<Vec<u32>>,
    cols: usize,
}

fn make_stencil_jacobian(cols: usize, stencil: usize) -> SparsePattern {
    let rows = (0..cols)
        .map(|r| {
            let lo = r.saturating_sub(stencil / 2);
            let hi = (r + stencil / 2).min(cols - 1);
            (lo as u32..=hi as u32).collect()
        })
        .collect();
    SparsePattern { rows, cols }
}

/// Builds the column intersection graph.
fn column_intersection_graph(p: &SparsePattern) -> Csr {
    let mut b = GraphBuilder::new(p.cols);
    for row in &p.rows {
        for (i, &a) in row.iter().enumerate() {
            for &c in &row[i + 1..] {
                b.push(a, c);
            }
        }
    }
    b.build()
}

/// Verifies a column grouping is a valid compression: within a group no
/// two columns share a row.
fn validate_groups(p: &SparsePattern, colors: &[u32]) {
    for (r, row) in p.rows.iter().enumerate() {
        let mut seen = std::collections::HashSet::new();
        for &c in row {
            assert!(
                seen.insert(colors[c as usize]),
                "row {r} has two columns of color {}",
                colors[c as usize]
            );
        }
    }
}

fn main() {
    let cols = 4096;
    let stencil = 7;
    let p = make_stencil_jacobian(cols, stencil);
    let g = column_intersection_graph(&p);
    println!(
        "Jacobian pattern: {cols} columns, stencil {stencil} -> intersection graph with {} edges, max degree {}",
        g.num_edges(),
        g.max_degree()
    );

    for (name, result) in [
        (
            "sequential greedy",
            greedy(&g, Ordering::SmallestDegreeLast, 0),
        ),
        ("GraphBLAST MIS", gblas_mis(&g, 3)),
    ] {
        assert_proper(&g, result.coloring.as_slice());
        validate_groups(&p, result.coloring.as_slice());
        println!(
            "{name:<18}: {} function evaluations instead of {cols} ({}x compression), {:.3} model ms",
            result.num_colors,
            cols as u32 / result.num_colors,
            result.model_ms
        );
    }
    println!("\nboth groupings verified: no row sees the same color twice");
}
