//! Service demo: drive the `gc-service` coloring service from several
//! client threads with mixed objectives, deadlines, and repeats.
//!
//! ```text
//! cargo run --release -p gc-examples --bin service_demo [scale] [workers]
//! ```

use std::sync::Arc;
use std::time::Duration;

use gc_datasets::TEST_SCALE;
use gc_service::{ColorRequest, ColoringService, Objective, ServiceConfig, ServiceError};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(TEST_SCALE * 5.0);
    let workers: usize = args
        .next()
        .map(|s| s.parse().expect("workers must be an integer"))
        .unwrap_or(3);

    let datasets = ["ecology2", "af_shell3", "G3_circuit"];
    let graphs: Vec<(String, Arc<gc_graph::Csr>)> = datasets
        .iter()
        .map(|n| {
            let spec = gc_datasets::dataset_by_name(n).expect("registered dataset");
            (n.to_string(), Arc::new(spec.generate(scale, 42)))
        })
        .collect();
    for (name, g) in &graphs {
        println!(
            "loaded {name}: {} vertices, {} edges",
            g.num_vertices(),
            g.num_edges()
        );
    }

    let svc = ColoringService::start(ServiceConfig {
        workers,
        queue_capacity: 32,
        cache_capacity: 64,
        ..ServiceConfig::default()
    });
    println!("\nservice up: {workers} device workers, queue 32, cache 64\n");

    // Three client threads, one per objective, each sending every graph
    // twice — the second pass should be served from the result cache.
    let objectives = [
        Objective::Fastest,
        Objective::FewestColors,
        Objective::Balanced,
    ];
    std::thread::scope(|scope| {
        for objective in &objectives {
            let handle = svc.handle();
            let graphs = &graphs;
            scope.spawn(move || {
                for pass in 0..2 {
                    for (name, g) in graphs {
                        let req = ColorRequest::new(Arc::clone(g), objective.clone()).with_seed(42);
                        match handle.color(req) {
                            Ok(r) => println!(
                                "{:<14} {:<12} -> {:<24} {:>4} colors {:>9.3} ms{}{}",
                                objective.label(),
                                name,
                                r.colorer,
                                r.num_colors,
                                r.model_ms,
                                if r.cache_hit { "  [cache]" } else { "" },
                                if pass == 0 && !r.cache_hit {
                                    format!(
                                        "  (hottest kernel: {})",
                                        r.metrics.hottest_kernel.as_deref().unwrap_or("-")
                                    )
                                } else {
                                    String::new()
                                },
                            ),
                            Err(e) => {
                                println!("{:<14} {:<12} -> error: {e}", objective.label(), name)
                            }
                        }
                    }
                }
            });
        }
    });

    // A deadline the queue has already blown demonstrates shedding.
    let (name, g) = &graphs[0];
    let req = ColorRequest::new(Arc::clone(g), Objective::Fastest).with_deadline(Duration::ZERO);
    match svc.handle().color(req) {
        Err(ServiceError::DeadlineExceeded { queued_ms }) => {
            println!("\nzero-deadline request on {name} shed after {queued_ms} ms (as intended)");
        }
        other => println!("\nunexpected outcome for zero-deadline request: {other:?}"),
    }

    let stats = svc.stats();
    println!(
        "\nstats: submitted={} served={} cache_hits={} ({:.0}%) shed={} failed={}",
        stats.submitted,
        stats.served,
        stats.cache_hits,
        stats.cache_hit_rate() * 100.0,
        stats.shed,
        stats.failed
    );
    for (colorer, h) in &stats.latency_by_colorer {
        println!(
            "  {:<28} n={:<3} mean={:.3} ms max={:.3} ms {}",
            colorer,
            h.samples,
            h.mean_ms(),
            h.max_ms,
            h.brief()
        );
    }
    svc.shutdown();
    println!("service drained and shut down");
}
