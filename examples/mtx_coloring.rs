//! Color a real matrix from a Matrix Market file — the path a user with
//! the actual SuiteSparse datasets takes.
//!
//! ```text
//! cargo run --release -p gc-examples --bin mtx_coloring -- <file.mtx> [impl]
//! ```
//!
//! With no arguments, generates a small demonstration matrix in a temp
//! file first so the example is runnable out of the box.

use std::fs::File;
use std::io::{BufReader, BufWriter};

use gc_core::runner::{all_colorers, colorer_by_name};
use gc_core::verify::is_proper;
use gc_graph::mtx::{read_mtx, write_mtx};
use gc_graph::stats::GraphStats;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(p) => p,
        None => {
            // Self-demo: write an RGG to a temp .mtx and read it back.
            let p = std::env::temp_dir().join("gc_demo.mtx");
            let g = gc_graph::generators::rgg_scale(11, 7);
            let f = File::create(&p).expect("create temp mtx");
            write_mtx(&g, BufWriter::new(f)).expect("write mtx");
            println!("(no file given; wrote a demo RGG to {})\n", p.display());
            p.to_string_lossy().into_owned()
        }
    };
    let impl_name = args.next();

    let file = File::open(&path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let g = read_mtx(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });

    let stats = GraphStats::measure(&g, 16);
    println!(
        "{path}: {} vertices, {} edges, avg degree {:.2}, max degree {}, sampled diameter {}\n",
        stats.vertices, stats.edges, stats.degrees.avg, stats.degrees.max, stats.diameter_estimate
    );

    let colorers = match impl_name {
        Some(name) => {
            let Some(c) = colorer_by_name(&name) else {
                eprintln!("unknown implementation '{name}'; options:");
                for c in all_colorers() {
                    eprintln!("  {}", c.name());
                }
                std::process::exit(1);
            };
            vec![c]
        }
        None => all_colorers(),
    };

    println!(
        "{:<24}{:>12}{:>9}{:>9}",
        "implementation", "model(ms)", "colors", "valid"
    );
    println!("{}", "-".repeat(54));
    for c in colorers {
        let r = c.run(&g, 42);
        let ok = is_proper(&g, r.coloring.as_slice()).is_ok();
        println!(
            "{:<24}{:>12.3}{:>9}{:>9}",
            c.name(),
            r.model_ms,
            r.num_colors,
            if ok { "yes" } else { "NO" }
        );
    }
}
