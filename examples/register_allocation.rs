//! Register allocation via interference-graph coloring — the classic
//! Chaitin application the paper's introduction cites.
//!
//! A tiny straight-line IR is generated with random live ranges; two
//! virtual registers interfere when their live ranges overlap, so a
//! proper coloring of the interference graph is a register assignment,
//! and the color count is the number of physical registers needed.
//!
//! ```text
//! cargo run --release -p gc-examples --bin register_allocation
//! ```

use gc_core::gm_gpu::gebremedhin_manne;
use gc_core::greedy::{greedy, Ordering};
use gc_core::verify::assert_proper;
use gc_graph::{Csr, GraphBuilder};

/// A virtual register's live range `[start, end)` in the instruction
/// stream.
#[derive(Clone, Copy, Debug)]
struct LiveRange {
    start: u32,
    end: u32,
}

/// Generates overlapping live ranges with a deterministic LCG (program
/// hot loops reuse values across short spans).
fn make_live_ranges(count: usize, program_len: u32, max_span: u32) -> Vec<LiveRange> {
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = |bound: u32| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as u32) % bound
    };
    (0..count)
        .map(|_| {
            let start = next(program_len - 1);
            let span = 1 + next(max_span);
            LiveRange {
                start,
                end: (start + span).min(program_len),
            }
        })
        .collect()
}

/// Builds the interference graph: an edge per overlapping pair.
fn interference_graph(ranges: &[LiveRange]) -> Csr {
    let mut b = GraphBuilder::new(ranges.len());
    for (i, a) in ranges.iter().enumerate() {
        for (j, c) in ranges.iter().enumerate().skip(i + 1) {
            if a.start < c.end && c.start < a.end {
                b.push(i as u32, j as u32);
            }
        }
    }
    b.build()
}

/// Checks an assignment: no two simultaneously-live registers share a
/// physical register.
fn validate_assignment(ranges: &[LiveRange], assignment: &[u32]) {
    for (i, a) in ranges.iter().enumerate() {
        for (j, c) in ranges.iter().enumerate().skip(i + 1) {
            if a.start < c.end && c.start < a.end {
                assert_ne!(
                    assignment[i], assignment[j],
                    "vregs {i} and {j} are live together but share r{}",
                    assignment[i]
                );
            }
        }
    }
}

fn main() {
    let ranges = make_live_ranges(2000, 4096, 64);
    let g = interference_graph(&ranges);
    println!(
        "interference graph: {} virtual registers, {} interferences, max simultaneous-live ≈ {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree() + 1
    );

    for (name, r) in [
        (
            "sequential greedy (SDL)",
            greedy(&g, Ordering::SmallestDegreeLast, 0),
        ),
        ("GPU Gebremedhin-Manne", gebremedhin_manne(&g, 7)),
    ] {
        assert_proper(&g, r.coloring.as_slice());
        validate_assignment(&ranges, r.coloring.as_slice());
        let (min_class, max_class, _) = r.coloring.class_size_stats();
        println!(
            "{name:<26}: {} physical registers, {:.3} model ms (register pressure per class: {min_class}..{max_class})",
            r.num_colors, r.model_ms
        );
    }
    println!("\nboth assignments verified against every overlapping live-range pair");
}
