//! Coloring-based reordering for incomplete-LU preconditioners — the
//! application Naumov et al.'s csrcolor paper (the baseline this repo
//! reproduces against) was built for.
//!
//! In ILU(0) triangular solves, unknowns can be processed level by
//! level; reordering the matrix by color turns the sparse triangular
//! solve into `num_colors` fully-parallel stages, because same-colored
//! unknowns never depend on each other. This example colors a mesh
//! matrix with the fast and the tight GPU algorithms, reorders by color,
//! and compares the resulting stage counts and average parallelism.
//!
//! ```text
//! cargo run --release -p gc-examples --bin ilu_level_scheduling
//! ```

use gc_core::naumov::naumov_cc;
use gc_core::runner::colorer_by_name;
use gc_core::verify::assert_proper;
use gc_graph::generators::{grid3d, Stencil3d};

fn main() {
    // A 3-D 7-point Poisson matrix, the canonical ILU benchmark.
    let g = grid3d(24, 24, 24, Stencil3d::SevenPoint);
    println!(
        "matrix: {} unknowns, {} off-diagonal nonzero pairs (7-point Poisson)\n",
        g.num_vertices(),
        g.num_edges()
    );

    println!(
        "{:<24}{:>9}{:>22}{:>14}",
        "coloring", "stages", "avg parallelism", "model (ms)"
    );
    println!("{}", "-".repeat(69));
    for name in [
        "Naumov/Color_CC",
        "Naumov/Color_JPL",
        "GraphBLAST/Color_MIS",
    ] {
        let result = if name == "Naumov/Color_CC" {
            naumov_cc(&g, 11)
        } else {
            colorer_by_name(name).unwrap().run(&g, 11)
        };
        assert_proper(&g, result.coloring.as_slice());

        // Reorder by color: each color class is one parallel stage of the
        // triangular solve.
        let classes = result.coloring.color_classes();
        let avg_parallelism = g.num_vertices() as f64 / classes.len() as f64;
        println!(
            "{:<24}{:>9}{:>22.1}{:>14.3}",
            name,
            classes.len(),
            avg_parallelism,
            result.model_ms
        );

        // Check the schedule: within a stage, no unknown depends on
        // another from the same stage.
        for (_c, class) in &classes {
            let in_class: std::collections::HashSet<u32> = class.iter().copied().collect();
            for &v in class {
                for &u in g.neighbors(v) {
                    assert!(!in_class.contains(&u), "stage contains dependent unknowns");
                }
            }
        }
    }
    println!("\nall schedules verified: every stage is dependency-free");
    println!("fewer colors -> fewer stages -> more parallelism per stage (the time-quality trade-off in action)");
}
