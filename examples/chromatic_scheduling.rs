//! Chromatic scheduling: the paper's motivating application.
//!
//! Graph coloring makes data-graph computations deterministic and
//! parallel: vertices of one color share no edges, so a Gauss-Seidel
//! style update can process each color class fully in parallel, sweeping
//! the classes in order. Fewer colors = fewer sequential phases.
//!
//! This example runs a Jacobi-vs-chromatic-Gauss-Seidel heat-diffusion
//! solve on a mesh and shows how the color count (from two different
//! coloring algorithms) bounds the number of sequential phases.
//!
//! ```text
//! cargo run --release -p gc-examples --bin chromatic_scheduling
//! ```

use gc_core::gblas_mis::gblas_mis;
use gc_core::gunrock_is::{gunrock_is, IsConfig};
use gc_core::verify::assert_proper;
use gc_core::Coloring;
use gc_graph::generators::{grid2d, Stencil2d};
use gc_graph::Csr;

/// One chromatic Gauss-Seidel sweep: processes color classes in order;
/// within a class every vertex update reads only other-colored
/// neighbors, so the class is safely data-parallel.
fn gauss_seidel_sweep(g: &Csr, coloring: &Coloring, temps: &mut [f64]) {
    for (_color, class) in coloring.color_classes() {
        // Entire class updatable in parallel: no intra-class edges.
        let updates: Vec<(u32, f64)> = class
            .iter()
            .map(|&v| {
                let nbrs = g.neighbors(v);
                if nbrs.is_empty() {
                    return (v, temps[v as usize]);
                }
                let avg: f64 =
                    nbrs.iter().map(|&u| temps[u as usize]).sum::<f64>() / nbrs.len() as f64;
                (v, 0.5 * temps[v as usize] + 0.5 * avg)
            })
            .collect();
        for (v, t) in updates {
            temps[v as usize] = t;
        }
    }
}

fn residual(g: &Csr, temps: &[f64]) -> f64 {
    g.vertices()
        .map(|v| {
            let nbrs = g.neighbors(v);
            if nbrs.is_empty() {
                return 0.0;
            }
            let avg: f64 = nbrs.iter().map(|&u| temps[u as usize]).sum::<f64>() / nbrs.len() as f64;
            (temps[v as usize] - avg).abs()
        })
        .fold(0.0, f64::max)
}

fn main() {
    let g = grid2d(64, 64, Stencil2d::FivePoint);
    println!(
        "mesh: {} vertices, {} edges (5-point stencil)\n",
        g.num_vertices(),
        g.num_edges()
    );

    // Two coloring choices with different quality/time trade-offs.
    let fast = gunrock_is(&g, 7, IsConfig::min_max());
    let tight = gblas_mis(&g, 7);
    assert_proper(&g, fast.coloring.as_slice());
    assert_proper(&g, tight.coloring.as_slice());
    println!(
        "Gunrock/Color_IS    : {} colors in {:.3} model ms -> {} sequential phases per sweep",
        fast.num_colors, fast.model_ms, fast.num_colors
    );
    println!(
        "GraphBLAST/Color_MIS: {} colors in {:.3} model ms -> {} sequential phases per sweep",
        tight.num_colors, tight.model_ms, tight.num_colors
    );

    // Run the actual chromatic solver with the tighter coloring.
    let n = g.num_vertices();
    let mut temps = vec![0.0f64; n];
    temps[0] = 100.0; // hot corner
    temps[n - 1] = -100.0; // cold corner
    println!("\nchromatic Gauss-Seidel on the MIS coloring:");
    for sweep in 1..=8 {
        gauss_seidel_sweep(&g, &tight.coloring, &mut temps);
        println!("  sweep {sweep}: residual {:.6}", residual(&g, &temps));
    }

    // Determinism: same coloring -> same schedule -> same answer.
    let mut temps2 = vec![0.0f64; n];
    temps2[0] = 100.0;
    temps2[n - 1] = -100.0;
    for _ in 0..8 {
        gauss_seidel_sweep(&g, &tight.coloring, &mut temps2);
    }
    assert_eq!(temps, temps2);
    println!("\nschedule is deterministic: repeated run bit-identical");
}
